// Distributed SNAP training run (the paper's full system).
//
// SnapTrainer wires together every piece of §IV: the per-node EXTRA
// update (eq. 8), the optimized mixing matrix (§IV-B), APE-controlled
// parameter filtering with the two-format wire protocol (§IV-C), the
// synchronous-round exchange and straggler tolerance (§IV-D), and the
// hop-weighted communication-cost accounting of §II-B. The three
// published variants are configurations of the same engine:
//   SNAP    = FilterMode::kApe
//   SNAP-0  = FilterMode::kExactChange
//   SNO     = FilterMode::kSendAll
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "consensus/sparse_weight_matrix.hpp"
#include "consensus/topology_sparsifier.hpp"
#include "consensus/weight_reprojection.hpp"
#include "core/ape.hpp"
#include "core/snap_node.hpp"
#include "core/training.hpp"
#include "data/dataset.hpp"
#include "linalg/matrix.hpp"
#include "ml/model.hpp"
#include "net/fault_injector.hpp"
#include "net/transport.hpp"
#include "runtime/fabric.hpp"
#include "topology/graph.hpp"

namespace snap::core {

struct SnapTrainerConfig {
  double alpha = 0.05;                ///< EXTRA step size
  FilterMode filter = FilterMode::kApe;
  ApeConfig ape;                      ///< used when filter == kApe
  /// Iterations to run before arming the APE controllers. The budget is
  /// 10% of the mean |parameter| (§V) — anchored to the model *after*
  /// it has reached its natural scale, not to the near-zero random
  /// initialization. During warmup the node sends every changed
  /// parameter (SNAP-0 behaviour), which is what the early iterations
  /// do anyway since every change dwarfs any reasonable threshold.
  std::size_t ape_warmup_iterations = 5;
  ConvergenceCriteria convergence;
  EvalConfig eval;
  /// Per-round probability that a link drops both directions' frames
  /// (straggler injection, Fig. 9). 0 disables. Folded into `faults` as
  /// a memoryless link plan — the realized schedule is bitwise the one
  /// the old LinkFailureModel produced for the same seed.
  double link_failure_probability = 0.0;
  /// Generalized fault process: bursty link outages, scheduled/random
  /// node crash-restart, frame corruption (net::FaultPlan). Default is
  /// fault-free. A crash freezes the node (pause-resume semantics: its
  /// state survives, in-flight frames don't).
  net::FaultPlan faults;
  /// Recovery semantics when faults are active: async suspicion window
  /// and bounded retransmission.
  runtime::FaultRecoveryConfig recovery;
  /// Self-healing on confirmed churn: re-project W onto the surviving
  /// topology (weight_reprojection) and restart the EXTRA recursion from
  /// the current iterates. Disable only for ablations — without it the
  /// recursion anchors to the dead node's frozen parameters and the
  /// known divergence mode from persistent view skew returns.
  bool reproject_on_churn = true;
  /// How the surviving weight block is rebuilt on churn.
  consensus::ReprojectionMethod churn_reprojection =
      consensus::ReprojectionMethod::kMetropolis;
  /// Warm-start joiners: when a node joins (or rejoins), one live
  /// neighbor donates its current model over a STATE_SYNC frame
  /// (bytes charged, tallied in IterationStats::state_sync_bytes) and
  /// the joiner restarts EXTRA from the donated iterate (§IV-C allows
  /// arbitrary restart points). Disable to make joiners start cold
  /// from x⁰ — the ablation in bench/elastic_membership.
  bool warm_start_joins = true;
  /// How nodes treat neighbors whose round update never arrived.
  StragglerPolicy straggler_policy = StragglerPolicy::kReweight;
  /// Seeds model initialization and failure sampling.
  std::uint64_t seed = 1;
  /// Threads for the embarrassingly-parallel per-node phases of each
  /// round (local updates, filtering, loss evaluation). 0 = one per
  /// hardware thread, 1 = fully serial. Results are bitwise identical
  /// for every value: parallel regions only write per-node slots of
  /// preallocated buffers, and every reduction (byte accounting,
  /// mailbox delivery, loss/mean/residual folds) runs serially in fixed
  /// node order afterwards.
  std::size_t threads = 1;
  /// Execution engine. kSync is the paper's shared-clock exchange
  /// (default, bitwise-deterministic); kAsync runs the same phase hooks
  /// event-driven with per-node compute times and per-link
  /// latency/bandwidth from `async`.
  runtime::FabricKind fabric = runtime::FabricKind::kSync;
  /// Heterogeneity model used when fabric == kAsync.
  runtime::AsyncTimingConfig async;
  /// Activation scheduler used when fabric == kGossip: each round only
  /// a sparse activated link subset (random matching or per-node
  /// fan-out) exchanges frames, the node rows are rebuilt on the
  /// activated subgraph (consensus::activated_mixing_matrix), and
  /// non-activated links accumulate backlog exactly like down links.
  /// gossip.seed == 0 derives the schedule from `seed`.
  runtime::GossipConfig gossip;
  /// Async-only: let nodes free-run instead of pacing each round on a
  /// frame (or heartbeat) from every neighbor. EXTRA's corrected
  /// recursion assumes aligned view snapshots — under persistent skew
  /// its accumulator amplifies the misalignment and the run diverges —
  /// so the default keeps neighborhood-local pacing: no global barrier,
  /// no incast hub, but a node waits until it has heard from all
  /// neighbors since its own last update. Enable free-running (with
  /// AsyncTimingConfig::max_staleness_rounds as the only brake) for
  /// staleness experiments.
  bool async_free_run = false;
  /// Closed-form round timing that stamps sim_seconds under kSync.
  runtime::TimingModel timing;
  /// Delivery backend. kSim (default) runs in-process on the
  /// deterministic RoundMailbox oracle; kUds/kTcp runs this process as
  /// shard `transport.shard_id` of `transport.shards`, carrying
  /// cross-shard frames over real sockets with the SNAP frame codec.
  /// The learning trajectory is bitwise identical across backends for
  /// the same seed (the oracle contract); only wall-clock timing and
  /// OS-level byte counts differ. Socket backends require a sync or
  /// gossip fabric.
  net::TransportConfig transport;
  /// Round-aligned crash checkpointing (sync/gossip fabrics only):
  /// `checkpoint.every > 0` writes a RunCheckpoint to `checkpoint.path`
  /// after every such round; `checkpoint.resume` restores from it before
  /// round 1 (missing file = cold start, i.e. replay from round 0). The
  /// blob carries the complete trainer state — node iterates/views, APE
  /// controllers, membership masks, gossip backlog — plus fabric series
  /// and transport wire positions, so a resumed run is bitwise identical
  /// to one that never stopped.
  runtime::CheckpointConfig checkpoint;
  /// Cost-aware topology sparsification (sync/gossip fabrics only).
  /// When enabled, the trainer prunes the mixing topology under the
  /// configured SLEM/cost budget before round 1 — replacing the
  /// provided W with the re-derived one on the survivors — and re-runs
  /// the sparsifier at every membership/partition epoch on the current
  /// alive subgraph. Pruned links carry no frames (their backlog
  /// accumulates exactly like non-activated gossip links) and are
  /// excluded from the fault injector's outage counters. The prune
  /// schedule is a pure function of (plan, seed, graph, epoch): it
  /// replays bitwise across thread counts, socket shards, and
  /// checkpoint resume.
  consensus::SparsifierConfig sparsify;
};

/// Optional per-iteration observer: (iteration index starting at 1,
/// per-node parameter vectors after the update).
using IterationObserver =
    std::function<void(std::size_t, const std::vector<SnapNode>&)>;

class SnapTrainer {
 public:
  /// `w` must be a feasible mixing matrix for `graph`
  /// (consensus::is_feasible_weight_matrix). One shard per node.
  /// `graph` and `model` are borrowed, not copied — they must outlive
  /// train(); the deleted overload rejects model temporaries, which an
  /// ASan run caught a test passing. The dense matrix is converted to
  /// the CSR form internally (bitwise the same weights), so this
  /// overload is for small-n callers and oracle tests; at edge scale
  /// pass a SparseWeightMatrix and skip the O(n²) intermediate.
  SnapTrainer(const topology::Graph& graph, const linalg::Matrix& w,
              const ml::Model& model, std::vector<data::Dataset> shards,
              SnapTrainerConfig config);
  /// Sparse-native form: `w` is validated with the O(|E|) sparse
  /// feasibility check; no dense matrix is ever materialized.
  SnapTrainer(const topology::Graph& graph,
              const consensus::SparseWeightMatrix& w, const ml::Model& model,
              std::vector<data::Dataset> shards, SnapTrainerConfig config);
  SnapTrainer(const topology::Graph&, const linalg::Matrix&, ml::Model&&,
              std::vector<data::Dataset>, SnapTrainerConfig) = delete;
  SnapTrainer(const topology::Graph&, const consensus::SparseWeightMatrix&,
              ml::Model&&, std::vector<data::Dataset>,
              SnapTrainerConfig) = delete;

  /// Runs until convergence or config.convergence.max_iterations.
  /// `test` is used for accuracy reporting (may be empty — accuracy 1.0).
  /// One-shot: the trainer consumes its shards; a second call is a
  /// contract violation (construct a fresh trainer instead).
  TrainResult train(const data::Dataset& test);

  /// Installs an observer invoked after every iteration (e.g. Fig. 2's
  /// parameter-evolution probes).
  void set_observer(IterationObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  const topology::Graph* graph_;
  consensus::SparseWeightMatrix w_;
  const ml::Model* model_;
  std::vector<data::Dataset> shards_;
  SnapTrainerConfig config_;
  IterationObserver observer_;
  bool trained_ = false;
};

}  // namespace snap::core

// Shared training-run vocabulary: per-iteration statistics, the uniform
// TrainResult every scheme produces, and the convergence detector that
// defines "iterations to converge" identically for SNAP, SNAP-0, SNO,
// the parameter-server baseline, TernGrad, and centralized training.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "linalg/vector.hpp"

namespace snap::core {

/// One training iteration as observed from the outside.
struct IterationStats {
  double train_loss = 0.0;      ///< aggregate objective at the mean model
  double test_accuracy = 0.0;   ///< accuracy of the mean model (when evaluated)
  bool evaluated = false;       ///< whether loss/accuracy were computed
  std::uint64_t bytes = 0;      ///< socket bytes written this iteration
  std::uint64_t cost = 0;       ///< hop-weighted communication cost
  /// Largest per-node inbound / outbound byte count this iteration —
  /// the NIC-contention quantities behind the incast argument (§I).
  std::uint64_t max_node_inbound_bytes = 0;
  std::uint64_t max_node_outbound_bytes = 0;
  double consensus_residual = 0.0;  ///< max_i ‖x_i − x̄‖_∞ (0 for central)
  /// Simulated wall-clock at the end of this iteration (cumulative
  /// seconds since the start of the run). SyncFabric stamps it via the
  /// closed-form runtime::TimingModel; AsyncFabric reads its event
  /// clock. 0 for schemes that don't model time (centralized).
  double sim_seconds = 0.0;
  /// Async-fabric staleness of the frames mixed in during this
  /// iteration window: how many local rounds the receiver was ahead of
  /// the sender's round, averaged / maxed over deliveries. Always 0
  /// under synchronous execution.
  double mean_frame_staleness = 0.0;
  std::uint64_t max_frame_staleness = 0;
  /// Fault-injection telemetry (all 0 without a FaultInjector):
  /// burst-down links and crashed nodes during this iteration window,
  /// and frames the fabric dropped (down link/node, retries exhausted),
  /// corrupted in flight, or retransmitted (async bounded retry).
  std::uint64_t links_down = 0;
  std::uint64_t nodes_down = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_retried = 0;
  /// Elastic-membership telemetry: members up this iteration (equals
  /// the node count without a FaultInjector), nodes whose join was
  /// announced this iteration, and bytes spent on STATE_SYNC warm-start
  /// handoffs (also included in `bytes`/`cost`).
  std::uint64_t alive_nodes = 0;
  std::uint64_t nodes_joined = 0;
  std::uint64_t state_sync_bytes = 0;
  /// Gossip-fabric telemetry: links the activation scheduler selected
  /// this iteration. 0 on the other fabrics (every link is eligible).
  std::uint64_t links_activated = 0;
  /// Partition telemetry: connected components of the effective alive
  /// graph this iteration, the fraction of alive members in the largest
  /// one, and the monotone partition epoch (bumped every time the
  /// component structure changes). 1 / 1.0 / 0 when the run has no
  /// FaultInjector or the injector is not tracking partitions.
  std::uint64_t components = 1;
  double largest_component_frac = 1.0;
  std::uint64_t partition_epoch = 0;
  /// Topology-sparsifier telemetry (all 0 / 0.0 when sparsification is
  /// off): links the sparsifier currently holds pruned, effective
  /// (kept, alive, same-component) edges of the mixing topology, and
  /// the max component SLEM after the latest prune pass.
  std::uint64_t links_pruned = 0;
  std::uint64_t effective_edges = 0;
  double slem_after_prune = 0.0;
};

/// Uniform result of a training run.
struct TrainResult {
  std::vector<IterationStats> iterations;
  /// First iteration index (1-based count) at which the convergence
  /// detector fired; equals iterations.size() when it never fired.
  std::size_t converged_after = 0;
  bool converged = false;
  /// Mean model across nodes at the end of the run.
  linalg::Vector final_params;
  double final_train_loss = 0.0;
  double final_test_accuracy = 0.0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_cost = 0;
  /// Simulated wall-clock of the whole run (seconds); the last
  /// iteration's cumulative sim_seconds. 0 when time is not modeled.
  double total_sim_seconds = 0.0;
};

/// When to declare a run converged.
///
/// Default (plateau) mode — a run converges at iteration k when BOTH:
///   - relative loss plateau: |L_k − L_{k−window}| / max(|L_{k−window}|,
///     floor) < loss_tolerance, and
///   - consensus: max_i ‖x_i − x̄‖_∞ < consensus_tolerance (trivially 0
///     for single-model schemes).
///
/// Target mode — when `target_loss` is set, the plateau rule is replaced
/// by L_k <= target_loss (consensus still required). This is the metric
/// the cross-scheme sweeps use ("iterations to reach the centralized
/// converged loss"): a plateau can fire at a *worse* loss under heavy
/// filtering or link failures, which would make a degraded run look
/// faster.
struct ConvergenceCriteria {
  double loss_tolerance = 1e-4;
  double consensus_tolerance = 1e-3;
  std::size_t window = 5;
  std::size_t min_iterations = 10;
  std::size_t max_iterations = 500;
  std::optional<double> target_loss;
  /// Accuracy-target mode (highest precedence): converged when the
  /// evaluated test accuracy reaches this value (consensus still
  /// required). This is the paper's operative notion — "achieve the
  /// same accuracy performance as the centralized training" — and the
  /// one under which SNAP's headline communication savings hold; an
  /// equal-loss bar (target_loss) is stricter because small APE bias
  /// barely moves accuracy but shows up in the loss.
  std::optional<double> target_accuracy;
};

/// Streaming detector over (loss, consensus_residual) observations.
class ConvergenceDetector {
 public:
  explicit ConvergenceDetector(const ConvergenceCriteria& criteria)
      : criteria_(criteria) {}

  /// Feeds one iteration's observations; returns true once converged
  /// (and stays true). `accuracy` is the evaluated test accuracy, or a
  /// negative value on iterations where accuracy was not evaluated
  /// (accuracy-target mode simply cannot fire on those iterations).
  bool observe(double loss, double consensus_residual,
               double accuracy = -1.0);

  bool converged() const noexcept { return converged_; }

  /// Iterations observed when convergence first fired.
  std::size_t converged_after() const noexcept { return converged_after_; }

  const ConvergenceCriteria& criteria() const noexcept { return criteria_; }

 private:
  ConvergenceCriteria criteria_;
  std::vector<double> losses_;
  bool converged_ = false;
  std::size_t converged_after_ = 0;
};

/// How often (and on how much data) to evaluate loss/accuracy during a
/// run. Evaluation on every iteration is exact but expensive for the
/// MLP, so benches may sample.
struct EvalConfig {
  /// Evaluate on iterations k with k % every == 0 (and always the last).
  std::size_t every = 1;
};

}  // namespace snap::core

#include "core/ape.hpp"

#include <cmath>

#include "common/check.hpp"

namespace snap::core {

ApeController::ApeController(const ApeConfig& config, double mean_abs_param)
    : config_(config),
      budget_(config.initial_budget_fraction * std::abs(mean_abs_param)) {
  SNAP_REQUIRE(config.growth_factor >= 1.0);
  SNAP_REQUIRE(config.budget_decay > 0.0 && config.budget_decay < 1.0);
  SNAP_REQUIRE(config.stage_iterations >= 1);
  SNAP_REQUIRE(config.epsilon > 0.0);
  if (budget_ < config_.epsilon) {
    active_ = false;
    threshold_ = 0.0;
  } else {
    recompute_threshold();
  }
}

void ApeController::recompute_threshold() {
  // Δ_max = T / (I · (1 + αG)^I) — Algorithm 1 line 4.
  const double growth = std::pow(config_.growth_factor,
                                 static_cast<double>(config_.stage_iterations));
  threshold_ =
      budget_ / (static_cast<double>(config_.stage_iterations) * growth);
}

void ApeController::advance_stage() {
  budget_ *= config_.budget_decay;
  accumulated_ = 0.0;
  iterations_in_stage_ = 0;
  ++stage_;
  if (budget_ < config_.epsilon) {
    active_ = false;
    threshold_ = 0.0;
  } else {
    recompute_threshold();
  }
}

void ApeController::record_iteration(double max_withheld_change) {
  if (!active_) return;
  SNAP_REQUIRE(max_withheld_change >= 0.0);
  // Running form of bound (27): every previously-accrued term ages by one
  // factor of (1 + αG), and this iteration contributes its withheld max.
  accumulated_ =
      accumulated_ * config_.growth_factor + max_withheld_change;
  ++iterations_in_stage_;
  // Algorithm 1: a stage ends when the APE estimate exceeds the budget —
  // but §V requires the threshold stay in effect "at least 10
  // iterations", so both conditions gate the advance. A quiet stage
  // (almost nothing withheld) still advances at the hard cap so the
  // threshold schedule keeps marching toward ε.
  const bool budget_consumed =
      accumulated_ >= budget_ &&
      iterations_in_stage_ >= config_.stage_iterations;
  const bool timed_out = config_.max_stage_iterations > 0 &&
                         iterations_in_stage_ >= config_.max_stage_iterations;
  if (budget_consumed || timed_out) {
    advance_stage();
  }
}

}  // namespace snap::core

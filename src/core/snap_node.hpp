// Per-edge-server state and update rule (paper eq. (8)).
//
// A SnapNode owns one copy of the model parameters, its local data
// shard, and its *views* of each neighbor's parameters — the values it
// most recently received, which may be stale (filtered updates,
// stragglers). Each iteration it:
//   1. computes the EXTRA update from its own exact history and the
//      neighbor views (compute_update),
//   2. decides which parameters to transmit by comparing its new
//      parameters against the values it last advertised
//      (collect_updates), and
//   3. folds incoming frames into its views (advance_views /
//      apply_update).
// The "advertised" bookkeeping makes the withheld error per parameter
// at most the current threshold regardless of how many iterations it
// has been withheld — a slightly stronger guarantee than per-iteration
// deltas, with identical traffic behaviour (see DESIGN.md).
//
// Storage is structure-of-arrays: the mixing row lives in an aligned
// weight array over the index-sorted neighbor list (one CSR row view),
// and neighbor views/freshness live in contiguous per-slot slabs —
// compute_update walks flat arrays instead of chasing hash buckets, so
// ThreadPool sweeps over nodes stay cache-friendly at 10⁴–10⁵ nodes.
// The map-based constructors remain as convenience adapters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/binary_io.hpp"
#include "data/dataset.hpp"
#include "linalg/vector.hpp"
#include "ml/model.hpp"
#include "net/frame.hpp"
#include "topology/graph.hpp"

namespace snap::core {

/// How a node treats a neighbor whose round update never arrived
/// (paper §IV-D stragglers).
enum class StragglerPolicy {
  /// Fold the absent neighbor's mixing weight into the node's own value
  /// for this round — the neighbor is dropped from the average, and the
  /// round's effective mixing matrix stays (symmetric) doubly
  /// stochastic. This matches the paper's dropout intuition and keeps
  /// EXTRA's error floor proportional to the *dropout rate*, not to the
  /// staleness of old values. Default.
  kReweight,
  /// Use the last received values in place of the missing update — the
  /// paper's literal text ("leverage the latest parameter updates").
  /// Stale anchors perturb EXTRA's telescoped invariant, so heavy
  /// failure rates cost noticeably more accuracy under this policy (see
  /// the straggler ablation bench).
  kStaleValues,
};

/// Which parameters a node transmits each iteration.
enum class FilterMode {
  kApe,          ///< SNAP: APE-controlled threshold (Algorithm 1)
  kExactChange,  ///< SNAP-0: drop only parameters with zero change
  kSendAll,      ///< SNO: every parameter, every iteration
};

class SnapNode {
 public:
  /// `weights_row` is row i of the mixing matrix W restricted to
  /// {self} ∪ neighbors (all other entries of W are zero). The W̃ row is
  /// derived internally as (w + 1{j==i})/2.
  SnapNode(topology::NodeId id, const ml::Model& model,
           data::Dataset shard, std::vector<topology::NodeId> neighbors,
           std::unordered_map<topology::NodeId, double> weights_row,
           StragglerPolicy straggler_policy = StragglerPolicy::kReweight);

  /// Aligned fast path: `neighbor_weights[s]` is the weight of
  /// `neighbors[s]`, which must already be index-sorted (a CSR row view
  /// with the diagonal split out). Avoids building a map per node when
  /// the caller already holds the sparse row.
  SnapNode(topology::NodeId id, const ml::Model& model,
           data::Dataset shard, std::vector<topology::NodeId> neighbors,
           std::vector<double> neighbor_weights, double self_weight,
           StragglerPolicy straggler_policy = StragglerPolicy::kReweight);

  /// Installs x⁰ and primes views/advertised values. All nodes must be
  /// seeded with the same x⁰ (they are in SNAP: a shared initial model),
  /// so initial views are exact without a broadcast round.
  void set_initial(const linalg::Vector& x0);

  /// Replaces this node's mixing-matrix row mid-run (weight re-projection
  /// on confirmed churn). The row must still cover {self} ∪ neighbors and
  /// sum to 1 — a re-projected matrix zeroes dead neighbors' weights
  /// rather than removing the entries. Views, iterate history, and
  /// advertised values are untouched; pair with restart() so the next
  /// update is a fresh first EXTRA step under the new W.
  void set_weight_row(std::unordered_map<topology::NodeId, double> weights_row);

  /// Aligned form: `neighbor_weights[s]` pairs with the s-th entry of
  /// the current (sorted) neighbor list.
  void set_weight_row(std::vector<double> neighbor_weights,
                      double self_weight);

  /// Replaces the neighbor set *and* the mixing row together — the
  /// membership-epoch form of set_weight_row, used when a join attaches
  /// new edges. Existing neighbor views (and their freshness) survive —
  /// including across a detach/re-attach cycle; a brand-new neighbor's
  /// view is primed to this node's own iterate and marked stale, so
  /// under kReweight it contributes nothing until its first real frame
  /// lands. Pair with restart().
  void set_topology(std::vector<topology::NodeId> neighbors,
                    std::unordered_map<topology::NodeId, double> weights_row);

  /// Aligned form of set_topology: `neighbors` must be sorted and
  /// `neighbor_weights` aligned with it.
  void set_topology(std::vector<topology::NodeId> neighbors,
                    std::vector<double> neighbor_weights,
                    double self_weight);

  /// Warm start from a neighbor's STATE_SYNC handoff: installs `x` as
  /// both the current and previous iterate and restarts the EXTRA
  /// recursion from it (§IV-C licenses restarting from arbitrary
  /// iterates). The advertised baseline is deliberately left at its old
  /// values: the adopted parameters differ from it nearly everywhere,
  /// so the next collect_updates re-advertises (almost) the full
  /// vector and corrects every neighbor's view of this node.
  void adopt_params(const linalg::Vector& x);

  /// Advances the local iterate one EXTRA step (eq. (8)) using the
  /// current neighbor views. `alpha` is the step size.
  void compute_update(double alpha);

  /// Restarts the EXTRA recursion from the current iterate: the next
  /// compute_update performs a fresh first step (x¹ = Wx⁰ − α∇f) with
  /// the current parameters as x⁰. Views and advertised values are
  /// kept. Exposed for ablations; the production trainer does NOT
  /// restart at APE stage boundaries — the first EXTRA step moves by
  /// the full local gradient α∇f_i (nonzero even at the consensual
  /// optimum), so a restart near convergence re-injects error.
  void restart() noexcept { iteration_ = 0; }

  struct Outgoing {
    /// Parameters to transmit (sorted by index).
    std::vector<net::ParamUpdate> updates;
    /// Largest |change| among *withheld* parameters (APE bookkeeping).
    double max_withheld = 0.0;
  };

  /// Selects parameters whose |x − advertised| meets the mode/threshold,
  /// marks them advertised, and returns them. `threshold` only applies
  /// to kApe mode.
  Outgoing collect_updates(FilterMode mode, double threshold);

  /// Shifts every neighbor view one iteration back (x̂ᵏ becomes the
  /// "previous" view) and marks every neighbor stale until a frame
  /// (possibly an empty heartbeat) arrives. Call once per round before
  /// apply_update.
  void advance_views();

  /// Applies a received frame from neighbor `from` onto the current view
  /// and marks that neighbor fresh for the next update. An empty frame
  /// is a heartbeat: no values change, but the neighbor counts as heard
  /// from. A frame from a *detached* former neighbor (in flight when an
  /// epoch changed) updates the parked view it would reattach with.
  void apply_update(topology::NodeId from,
                    std::span<const net::ParamUpdate> updates);

  /// True when `j`'s latest round update arrived (used by kReweight).
  bool is_fresh(topology::NodeId j) const;

  topology::NodeId id() const noexcept { return id_; }
  const std::vector<topology::NodeId>& neighbors() const noexcept {
    return neighbors_;
  }
  const linalg::Vector& params() const noexcept { return x_current_; }
  const data::Dataset& shard() const noexcept { return shard_; }
  std::size_t iteration() const noexcept { return iteration_; }

  /// Local objective f_i evaluated at arbitrary parameters.
  double local_loss(const linalg::Vector& at) const {
    return model_->loss(at, shard_);
  }

  /// Node-local mean |x⁰_p| (used to size the initial APE budget).
  double mean_abs_initial() const noexcept { return mean_abs_initial_; }

  /// The view this node currently holds of neighbor `j` (for tests).
  std::span<const double> view_of(topology::NodeId j) const;

  /// Checkpoint save/restore of the complete mutable node state: mixing
  /// rows (current + the prev-row the memory term pairs with), iterate
  /// history, advertised baseline, view slabs + freshness, parked views
  /// (serialized in key order for determinism), and the EXTRA iteration
  /// counter. The id/model/shard/straggler policy are reconstruction-
  /// time — the trainer rebuilds the node, then load() overwrites the
  /// rest. load returns false on a truncated or shape-inconsistent
  /// blob, never half-applies.
  void save(common::ByteWriter& writer) const;
  bool load(common::ByteReader& reader);

 private:
  /// A detached neighbor's view state, parked across membership epochs
  /// so a re-attach resumes exactly where the detach left off.
  struct ParkedView {
    std::vector<double> current;
    std::vector<double> previous;
    bool fresh = false;
    bool fresh_previous = false;
  };

  void validate_weight_row() const;
  /// Slot of neighbor j in the sorted neighbor list, or npos.
  std::size_t slot_of(topology::NodeId j) const noexcept;
  /// Rebuilds the view slabs for a changed neighbor list, carrying
  /// surviving views over, restoring parked ones, priming new ones.
  void reindex_views(const std::vector<topology::NodeId>& old_neighbors);

  std::span<const double> view_current(std::size_t slot) const noexcept {
    return {view_current_slab_.data() + slot * dim_, dim_};
  }
  std::span<double> view_current(std::size_t slot) noexcept {
    return {view_current_slab_.data() + slot * dim_, dim_};
  }
  std::span<const double> view_previous(std::size_t slot) const noexcept {
    return {view_previous_slab_.data() + slot * dim_, dim_};
  }

  topology::NodeId id_;
  const ml::Model* model_;
  data::Dataset shard_;
  /// Index-sorted neighbor ids; w_neighbors_[s] is the mixing weight of
  /// neighbors_[s] (a CSR row with the diagonal held in w_self_).
  std::vector<topology::NodeId> neighbors_;
  std::vector<double> w_neighbors_;
  double w_self_ = 0.0;
  /// The row the previous compute_update mixed with — the W̃ memory term
  /// must pair with it, not with a row swapped in since (time-varying
  /// gossip activations; identical to the current row under a static W).
  /// Only re-captured when the row actually changed (see w_row_dirty_).
  std::vector<topology::NodeId> neighbors_prev_;
  std::vector<double> w_neighbors_prev_;
  double w_self_prev_ = 0.0;
  /// True when the mixing row (or neighbor set) changed since the last
  /// compute_update — lets the per-round prev-row capture degenerate to
  /// a flag clear on the (overwhelmingly common) static-row rounds.
  bool w_row_dirty_ = true;

  linalg::Vector x_previous_;
  linalg::Vector x_current_;
  linalg::Vector grad_previous_;
  linalg::Vector advertised_;
  StragglerPolicy straggler_policy_;
  /// Neighbor views as slot-major contiguous slabs of dim_ doubles.
  std::size_t dim_ = 0;
  std::vector<double> view_current_slab_;
  std::vector<double> view_previous_slab_;
  std::vector<std::uint8_t> fresh_;
  std::vector<std::uint8_t> fresh_previous_;
  /// Views of detached former neighbors, keyed for re-attach.
  std::unordered_map<topology::NodeId, ParkedView> parked_views_;
  std::size_t iteration_ = 0;
  double mean_abs_initial_ = 0.0;
};

}  // namespace snap::core

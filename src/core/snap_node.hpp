// Per-edge-server state and update rule (paper eq. (8)).
//
// A SnapNode owns one copy of the model parameters, its local data
// shard, and its *views* of each neighbor's parameters — the values it
// most recently received, which may be stale (filtered updates,
// stragglers). Each iteration it:
//   1. computes the EXTRA update from its own exact history and the
//      neighbor views (compute_update),
//   2. decides which parameters to transmit by comparing its new
//      parameters against the values it last advertised
//      (collect_updates), and
//   3. folds incoming frames into its views (advance_views /
//      apply_update).
// The "advertised" bookkeeping makes the withheld error per parameter
// at most the current threshold regardless of how many iterations it
// has been withheld — a slightly stronger guarantee than per-iteration
// deltas, with identical traffic behaviour (see DESIGN.md).
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "linalg/vector.hpp"
#include "ml/model.hpp"
#include "net/frame.hpp"
#include "topology/graph.hpp"

namespace snap::core {

/// How a node treats a neighbor whose round update never arrived
/// (paper §IV-D stragglers).
enum class StragglerPolicy {
  /// Fold the absent neighbor's mixing weight into the node's own value
  /// for this round — the neighbor is dropped from the average, and the
  /// round's effective mixing matrix stays (symmetric) doubly
  /// stochastic. This matches the paper's dropout intuition and keeps
  /// EXTRA's error floor proportional to the *dropout rate*, not to the
  /// staleness of old values. Default.
  kReweight,
  /// Use the last received values in place of the missing update — the
  /// paper's literal text ("leverage the latest parameter updates").
  /// Stale anchors perturb EXTRA's telescoped invariant, so heavy
  /// failure rates cost noticeably more accuracy under this policy (see
  /// the straggler ablation bench).
  kStaleValues,
};

/// Which parameters a node transmits each iteration.
enum class FilterMode {
  kApe,          ///< SNAP: APE-controlled threshold (Algorithm 1)
  kExactChange,  ///< SNAP-0: drop only parameters with zero change
  kSendAll,      ///< SNO: every parameter, every iteration
};

class SnapNode {
 public:
  /// `weights_row` is row i of the mixing matrix W restricted to
  /// {self} ∪ neighbors (all other entries of W are zero). The W̃ row is
  /// derived internally as (w + 1{j==i})/2.
  SnapNode(topology::NodeId id, const ml::Model& model,
           data::Dataset shard, std::vector<topology::NodeId> neighbors,
           std::unordered_map<topology::NodeId, double> weights_row,
           StragglerPolicy straggler_policy = StragglerPolicy::kReweight);

  /// Installs x⁰ and primes views/advertised values. All nodes must be
  /// seeded with the same x⁰ (they are in SNAP: a shared initial model),
  /// so initial views are exact without a broadcast round.
  void set_initial(const linalg::Vector& x0);

  /// Replaces this node's mixing-matrix row mid-run (weight re-projection
  /// on confirmed churn). The row must still cover {self} ∪ neighbors and
  /// sum to 1 — a re-projected matrix zeroes dead neighbors' weights
  /// rather than removing the entries. Views, iterate history, and
  /// advertised values are untouched; pair with restart() so the next
  /// update is a fresh first EXTRA step under the new W.
  void set_weight_row(std::unordered_map<topology::NodeId, double> weights_row);

  /// Replaces the neighbor set *and* the mixing row together — the
  /// membership-epoch form of set_weight_row, used when a join attaches
  /// new edges. Existing neighbor views (and their freshness) survive;
  /// a brand-new neighbor's view is primed to this node's own iterate
  /// and marked stale, so under kReweight it contributes nothing until
  /// its first real frame lands. Pair with restart().
  void set_topology(std::vector<topology::NodeId> neighbors,
                    std::unordered_map<topology::NodeId, double> weights_row);

  /// Warm start from a neighbor's STATE_SYNC handoff: installs `x` as
  /// both the current and previous iterate and restarts the EXTRA
  /// recursion from it (§IV-C licenses restarting from arbitrary
  /// iterates). The advertised baseline is deliberately left at its old
  /// values: the adopted parameters differ from it nearly everywhere,
  /// so the next collect_updates re-advertises (almost) the full
  /// vector and corrects every neighbor's view of this node.
  void adopt_params(const linalg::Vector& x);

  /// Advances the local iterate one EXTRA step (eq. (8)) using the
  /// current neighbor views. `alpha` is the step size.
  void compute_update(double alpha);

  /// Restarts the EXTRA recursion from the current iterate: the next
  /// compute_update performs a fresh first step (x¹ = Wx⁰ − α∇f) with
  /// the current parameters as x⁰. Views and advertised values are
  /// kept. Exposed for ablations; the production trainer does NOT
  /// restart at APE stage boundaries — the first EXTRA step moves by
  /// the full local gradient α∇f_i (nonzero even at the consensual
  /// optimum), so a restart near convergence re-injects error.
  void restart() noexcept { iteration_ = 0; }

  struct Outgoing {
    /// Parameters to transmit (sorted by index).
    std::vector<net::ParamUpdate> updates;
    /// Largest |change| among *withheld* parameters (APE bookkeeping).
    double max_withheld = 0.0;
  };

  /// Selects parameters whose |x − advertised| meets the mode/threshold,
  /// marks them advertised, and returns them. `threshold` only applies
  /// to kApe mode.
  Outgoing collect_updates(FilterMode mode, double threshold);

  /// Shifts every neighbor view one iteration back (x̂ᵏ becomes the
  /// "previous" view) and marks every neighbor stale until a frame
  /// (possibly an empty heartbeat) arrives. Call once per round before
  /// apply_update.
  void advance_views();

  /// Applies a received frame from neighbor `from` onto the current view
  /// and marks that neighbor fresh for the next update. An empty frame
  /// is a heartbeat: no values change, but the neighbor counts as heard
  /// from.
  void apply_update(topology::NodeId from,
                    std::span<const net::ParamUpdate> updates);

  /// True when `j`'s latest round update arrived (used by kReweight).
  bool is_fresh(topology::NodeId j) const;

  topology::NodeId id() const noexcept { return id_; }
  const std::vector<topology::NodeId>& neighbors() const noexcept {
    return neighbors_;
  }
  const linalg::Vector& params() const noexcept { return x_current_; }
  const data::Dataset& shard() const noexcept { return shard_; }
  std::size_t iteration() const noexcept { return iteration_; }

  /// Local objective f_i evaluated at arbitrary parameters.
  double local_loss(const linalg::Vector& at) const {
    return model_->loss(at, shard_);
  }

  /// Node-local mean |x⁰_p| (used to size the initial APE budget).
  double mean_abs_initial() const noexcept { return mean_abs_initial_; }

  /// The view this node currently holds of neighbor `j` (for tests).
  const linalg::Vector& view_of(topology::NodeId j) const;

 private:
  void validate_weight_row();

  topology::NodeId id_;
  const ml::Model* model_;
  data::Dataset shard_;
  std::vector<topology::NodeId> neighbors_;
  std::unordered_map<topology::NodeId, double> w_row_;
  double w_self_ = 0.0;
  /// The row the previous compute_update mixed with — the W̃ memory term
  /// must pair with it, not with a row swapped in since (time-varying
  /// gossip activations; identical to w_row_ under a static W).
  std::unordered_map<topology::NodeId, double> w_row_prev_;
  double w_self_prev_ = 0.0;

  linalg::Vector x_previous_;
  linalg::Vector x_current_;
  linalg::Vector grad_previous_;
  linalg::Vector advertised_;
  StragglerPolicy straggler_policy_;
  std::unordered_map<topology::NodeId, linalg::Vector> view_current_;
  std::unordered_map<topology::NodeId, linalg::Vector> view_previous_;
  std::unordered_map<topology::NodeId, bool> fresh_;
  std::unordered_map<topology::NodeId, bool> fresh_previous_;
  std::size_t iteration_ = 0;
  double mean_abs_initial_ = 0.0;
};

}  // namespace snap::core

// Factory tying the fabric interface to its implementations — schemes
// pick an engine with a FabricKind knob and never name the concrete
// types.
#pragma once

#include <memory>

#include "runtime/async_fabric.hpp"
#include "runtime/fabric.hpp"
#include "runtime/gossip_fabric.hpp"
#include "runtime/sync_fabric.hpp"

namespace snap::runtime {

/// `transport` is the delivery backend the fabric moves frames through
/// (nullptr = the in-process SimTransport, the deterministic default).
/// The fabric takes ownership. The async fabric accepts only nullptr or
/// a sim transport — its delivery is native to the event queue.
template <typename Payload>
std::unique_ptr<RoundFabric<Payload>> make_fabric(
    FabricKind kind, const FabricConfig& config,
    const AsyncTimingConfig& timing = {}, const GossipConfig& gossip = {},
    std::unique_ptr<net::Transport<Payload>> transport = nullptr) {
  switch (kind) {
    case FabricKind::kSync:
      return std::make_unique<SyncFabric<Payload>>(config,
                                                   std::move(transport));
    case FabricKind::kAsync:
      return std::make_unique<AsyncFabric<Payload>>(config, timing,
                                                    std::move(transport));
    case FabricKind::kGossip:
      return std::make_unique<GossipFabric<Payload>>(config, gossip,
                                                     std::move(transport));
  }
  return nullptr;
}

}  // namespace snap::runtime

// Factory tying the fabric interface to its implementations — schemes
// pick an engine with a FabricKind knob and never name the concrete
// types.
#pragma once

#include <memory>

#include "runtime/async_fabric.hpp"
#include "runtime/fabric.hpp"
#include "runtime/gossip_fabric.hpp"
#include "runtime/sync_fabric.hpp"

namespace snap::runtime {

template <typename Payload>
std::unique_ptr<RoundFabric<Payload>> make_fabric(
    FabricKind kind, const FabricConfig& config,
    const AsyncTimingConfig& timing = {}, const GossipConfig& gossip = {}) {
  switch (kind) {
    case FabricKind::kSync:
      return std::make_unique<SyncFabric<Payload>>(config);
    case FabricKind::kAsync:
      return std::make_unique<AsyncFabric<Payload>>(config, timing);
    case FabricKind::kGossip:
      return std::make_unique<GossipFabric<Payload>>(config, gossip);
  }
  return nullptr;
}

}  // namespace snap::runtime

#include "runtime/timing.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace snap::runtime {

double TimingModel::round_duration(
    double gradient_flops_value, std::uint64_t max_node_inbound_bytes,
    std::uint64_t max_node_outbound_bytes) const {
  SNAP_REQUIRE(nic_bandwidth_bytes_per_s > 0.0);
  SNAP_REQUIRE(compute_flops_per_s > 0.0);
  SNAP_REQUIRE(gradient_flops_value >= 0.0);
  const double compute = gradient_flops_value / compute_flops_per_s;
  const double transfer =
      static_cast<double>(
          std::max(max_node_inbound_bytes, max_node_outbound_bytes)) /
      nic_bandwidth_bytes_per_s;
  return compute + transfer + propagation_s;
}

double TimingModel::total_duration(const core::TrainResult& result,
                                   double gradient_flops_value) const {
  const std::size_t rounds =
      result.converged
          ? std::min(result.converged_after, result.iterations.size())
          : result.iterations.size();
  double total = 0.0;
  for (std::size_t k = 0; k < rounds; ++k) {
    const auto& stat = result.iterations[k];
    total += round_duration(gradient_flops_value,
                            stat.max_node_inbound_bytes,
                            stat.max_node_outbound_bytes);
  }
  return total;
}

double gradient_flops(std::size_t param_count, std::size_t samples) {
  return 4.0 * static_cast<double>(param_count) *
         static_cast<double>(samples);
}

}  // namespace snap::runtime

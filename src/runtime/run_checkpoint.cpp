#include "runtime/run_checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/binary_io.hpp"
#include "ml/checkpoint.hpp"

namespace snap::runtime {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'A', 'P', 'R', 'U', 'N', '1'};
// v2: per-iteration partition telemetry (components,
// largest_component_frac, partition_epoch) and sparsifier telemetry
// (links_pruned, effective_edges, slem_after_prune). v1 blobs are
// rejected — the loader treats that as "no checkpoint" and cold-replays
// from round 0, which determinism makes bitwise-equivalent.
constexpr std::uint32_t kVersion = 2;

void write_iteration(common::ByteWriter& writer,
                     const core::IterationStats& it) {
  writer.write_f64(it.train_loss);
  writer.write_f64(it.test_accuracy);
  writer.write_u8(it.evaluated ? 1 : 0);
  writer.write_u64(it.bytes);
  writer.write_u64(it.cost);
  writer.write_u64(it.max_node_inbound_bytes);
  writer.write_u64(it.max_node_outbound_bytes);
  writer.write_f64(it.consensus_residual);
  writer.write_f64(it.sim_seconds);
  writer.write_f64(it.mean_frame_staleness);
  writer.write_u64(it.max_frame_staleness);
  writer.write_u64(it.links_down);
  writer.write_u64(it.nodes_down);
  writer.write_u64(it.frames_dropped);
  writer.write_u64(it.frames_corrupted);
  writer.write_u64(it.frames_retried);
  writer.write_u64(it.alive_nodes);
  writer.write_u64(it.nodes_joined);
  writer.write_u64(it.state_sync_bytes);
  writer.write_u64(it.links_activated);
  writer.write_u64(it.components);
  writer.write_f64(it.largest_component_frac);
  writer.write_u64(it.partition_epoch);
  writer.write_u64(it.links_pruned);
  writer.write_u64(it.effective_edges);
  writer.write_f64(it.slem_after_prune);
}

core::IterationStats read_iteration(common::ByteReader& reader) {
  core::IterationStats it;
  it.train_loss = reader.read_f64();
  it.test_accuracy = reader.read_f64();
  it.evaluated = reader.read_u8() != 0;
  it.bytes = reader.read_u64();
  it.cost = reader.read_u64();
  it.max_node_inbound_bytes = reader.read_u64();
  it.max_node_outbound_bytes = reader.read_u64();
  it.consensus_residual = reader.read_f64();
  it.sim_seconds = reader.read_f64();
  it.mean_frame_staleness = reader.read_f64();
  it.max_frame_staleness = reader.read_u64();
  it.links_down = reader.read_u64();
  it.nodes_down = reader.read_u64();
  it.frames_dropped = reader.read_u64();
  it.frames_corrupted = reader.read_u64();
  it.frames_retried = reader.read_u64();
  it.alive_nodes = reader.read_u64();
  it.nodes_joined = reader.read_u64();
  it.state_sync_bytes = reader.read_u64();
  it.links_activated = reader.read_u64();
  it.components = reader.read_u64();
  it.largest_component_frac = reader.read_f64();
  it.partition_epoch = reader.read_u64();
  it.links_pruned = reader.read_u64();
  it.effective_edges = reader.read_u64();
  it.slem_after_prune = reader.read_f64();
  return it;
}

}  // namespace

std::vector<std::byte> encode_run_checkpoint(const RunCheckpoint& ckpt) {
  common::ByteWriter writer(256 + 208 * ckpt.iterations.size() +
                            ckpt.wire_state.size() +
                            ckpt.algorithm_state.size());
  for (const char c : kMagic) {
    writer.write_u8(static_cast<std::uint8_t>(c));
  }
  writer.write_u32(kVersion);
  writer.write_u64(ckpt.round);
  writer.write_f64(ckpt.sim_seconds);
  writer.write_u64(ckpt.membership_epoch);
  writer.write_u64(ckpt.alive.size());
  for (const std::uint8_t a : ckpt.alive) writer.write_u8(a);
  writer.write_u64(ckpt.iterations.size());
  for (const auto& it : ckpt.iterations) write_iteration(writer, it);
  writer.write_u64(ckpt.total_bytes);
  writer.write_u64(ckpt.total_cost);
  writer.write_u64(ckpt.wire_state.size());
  writer.write_bytes(ckpt.wire_state);
  writer.write_u64(ckpt.algorithm_state.size());
  writer.write_bytes(ckpt.algorithm_state);
  writer.write_u64(ml::fnv1a(writer.bytes()));
  return writer.take();
}

std::optional<RunCheckpoint> decode_run_checkpoint(
    std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + 8 + 8) return std::nullopt;

  const std::span<const std::byte> body = bytes.first(bytes.size() - 8);
  common::ByteReader tail(bytes.subspan(bytes.size() - 8));
  if (tail.read_u64() != ml::fnv1a(body)) return std::nullopt;

  common::ByteReader reader(body);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(reader.read_u8());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  if (reader.read_u32() != kVersion) return std::nullopt;

  RunCheckpoint ckpt;
  ckpt.round = reader.read_u64();
  ckpt.sim_seconds = reader.read_f64();
  ckpt.membership_epoch = reader.read_u64();
  const std::uint64_t alive_count = reader.read_u64();
  if (!reader.ok() || alive_count > reader.remaining()) return std::nullopt;
  ckpt.alive.reserve(alive_count);
  for (std::uint64_t i = 0; i < alive_count; ++i) {
    ckpt.alive.push_back(reader.read_u8());
  }
  const std::uint64_t iteration_count = reader.read_u64();
  // Each iteration occupies a fixed 201 bytes; bound (conservatively,
  // never above the true size) before reserving.
  if (!reader.ok() || iteration_count * 200 > reader.remaining()) {
    return std::nullopt;
  }
  ckpt.iterations.reserve(iteration_count);
  for (std::uint64_t i = 0; i < iteration_count; ++i) {
    ckpt.iterations.push_back(read_iteration(reader));
  }
  ckpt.total_bytes = reader.read_u64();
  ckpt.total_cost = reader.read_u64();
  const std::uint64_t wire_length = reader.read_u64();
  if (!reader.ok() || wire_length > reader.remaining()) return std::nullopt;
  ckpt.wire_state = reader.read_bytes(wire_length);
  const std::uint64_t algo_length = reader.read_u64();
  if (!reader.ok() || algo_length != reader.remaining()) return std::nullopt;
  ckpt.algorithm_state = reader.read_bytes(algo_length);
  if (!reader.ok()) return std::nullopt;
  return ckpt;
}

bool save_run_checkpoint(const std::string& path,
                         const RunCheckpoint& ckpt) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return false;
    const auto bytes = encode_run_checkpoint(ckpt);
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file) return false;
  }
  // rename(2) is atomic within a filesystem: readers see either the old
  // complete file or the new complete file, never a torn write.
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<RunCheckpoint> load_run_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return std::nullopt;
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!file) return std::nullopt;
  return decode_run_checkpoint(bytes);
}

}  // namespace snap::runtime

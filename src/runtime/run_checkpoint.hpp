// Round-aligned run checkpoints: everything a shard needs to resume a
// training run mid-flight and continue bitwise-identically to an
// uninterrupted execution.
//
// A RunCheckpoint extends the model checkpoint format (src/ml/
// checkpoint.*, same FNV-1a trailer discipline) from "a parameter
// vector" to "a whole run": the round counter, the full per-iteration
// stats series observed so far, the cost-tracker totals, the fault
// injector's membership epoch and alive mask (restored by deterministic
// replay, carried here for cross-validation), the transport's wire
// state (per-peer seq/flip positions), and an opaque algorithm blob the
// scheme serializes through RoundHooks::save_state (trainer params +
// EXTRA memory, APE controllers, RNG stream positions, backlog, ...).
//
// Files are written atomically (tmp + rename) so a crash mid-write can
// never leave a torn checkpoint for the respawned process to trip on —
// the previous round's file survives intact.
//
// Layout (little-endian):
//   magic "SNAPRUN1" | version u32 | round u64 | sim_seconds f64 |
//   membership_epoch u64 | alive count u64 | alive u8 × count |
//   iteration count u64 | IterationStats fields × count |
//   total_bytes u64 | total_cost u64 |
//   wire length u64 | wire bytes | algo length u64 | algo bytes |
//   checksum u64 (FNV-1a over everything before it)
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/training.hpp"

namespace snap::runtime {

/// Fabric-level checkpoint knobs (threaded from the CLI / configs down
/// into FabricConfig). Disabled by default: no path, no cadence.
struct CheckpointConfig {
  /// Checkpoint file path; empty disables both writing and resuming.
  std::string path;
  /// Write the checkpoint after every `every`-th round (0 = never).
  std::size_t every = 0;
  /// Load `path` before round 1 and continue from it. A missing file is
  /// not an error — the run starts from round 0 (a shard killed before
  /// its first checkpoint replays the whole prefix).
  bool resume = false;
};

/// A serialized run position, round-aligned (written after end_round).
struct RunCheckpoint {
  /// Round the checkpoint was taken after; resume continues at round+1.
  std::uint64_t round = 0;
  double sim_seconds = 0.0;
  /// FaultInjector cross-check: the membership epoch and alive mask at
  /// `round`. Restoration replays the injector deterministically; these
  /// fields only validate that the replay landed where the writer was.
  std::uint64_t membership_epoch = 0;
  std::vector<std::uint8_t> alive;
  /// Every iteration observed so far — the resumed TrainResult must
  /// contain the pre-crash prefix for trajectory parity.
  std::vector<core::IterationStats> iterations;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_cost = 0;
  /// Transport wire state (per-peer seq/flip positions) via
  /// net::Transport::save_wire_state. Empty for the sim transport.
  std::vector<std::byte> wire_state;
  /// Opaque algorithm blob via RoundHooks::save_state.
  std::vector<std::byte> algorithm_state;
};

/// Serializes a checkpoint to bytes (checksummed, self-describing).
std::vector<std::byte> encode_run_checkpoint(const RunCheckpoint& ckpt);

/// Parses bytes produced by encode_run_checkpoint. Returns nullopt on a
/// malformed buffer, wrong magic/version, or checksum mismatch.
std::optional<RunCheckpoint> decode_run_checkpoint(
    std::span<const std::byte> bytes);

/// Atomically writes the checkpoint to `path` (tmp + rename — a crash
/// mid-write leaves the previous file intact). Returns false on I/O
/// failure.
bool save_run_checkpoint(const std::string& path, const RunCheckpoint& ckpt);

/// Reads a checkpoint from `path`. Returns nullopt on I/O failure or a
/// malformed file.
std::optional<RunCheckpoint> load_run_checkpoint(const std::string& path);

}  // namespace snap::runtime

// Shared-clock round execution (the paper's §II-B / §IV-D model).
//
// SyncFabric is the extracted form of the round loop the trainers used
// to hand-roll, with the exact same phase interleaving and — crucially —
// the exact same determinism discipline:
//
//   - parallel phases (local_update, collect, mix) fan out on the pool
//     and write only node-owned slots of preallocated buffers;
//   - everything stateful — transport posts, CostTracker charges, the
//     convergence detector — replays serially in ascending node order
//     from those buffers.
//
// Results are therefore bitwise identical for every `threads` value,
// and bitwise identical to the pre-refactor per-scheme loops.
//
// Frames move through the net::Transport seam: the in-process
// SimTransport by default (the deterministic oracle), or an injected
// SocketTransport that carries cross-shard frames over real sockets —
// the fabric code is identical either way, which is what the oracle
// parity contract rests on.
//
// Mix-phase replies (MessageSink) are delivered in follow-up delivery
// waves within the same round: sends staged during wave w are posted
// serially in sender order, the transport flips, and wave w+1 runs mix
// on the nodes that received something — exactly how the parameter
// server's gradient-up/parameters-down round decomposes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "core/training.hpp"
#include "net/cost_model.hpp"
#include "net/transport.hpp"
#include "runtime/fabric.hpp"

namespace snap::runtime {

template <typename Payload>
class SyncFabric : public RoundFabric<Payload> {
 public:
  /// `transport` carries the frames (nullptr = build a SimTransport at
  /// first use — the deterministic default). The fabric owns it and
  /// attaches its CostTracker, so byte accounting runs behind the seam
  /// identically on every backend.
  explicit SyncFabric(const FabricConfig& config,
                      std::unique_ptr<net::Transport<Payload>> transport =
                          nullptr)
      : config_(config), pool_(config.threads),
        transport_(std::move(transport)) {
    if (config_.graph != nullptr) {
      // Tolerant routing: latent elastic-membership joiners are
      // isolated until their join round, so the graph may be
      // disconnected. Actual flows always have routes (frames touching
      // a non-member are dropped before charging, and joins refresh
      // the table below).
      cost_.emplace(net::HopMatrix(*config_.graph,
                                   /*require_connected=*/false));
    }
  }

  common::ThreadPool& pool() noexcept override { return pool_; }

  /// The delivery backend (nullptr until the first round when the
  /// default SimTransport is built lazily).
  net::Transport<Payload>* transport() noexcept { return transport_.get(); }

  /// Under the shared clock there is no silence ambiguity: a neighbor
  /// is suspected exactly when the injector has confirmed its crash.
  bool suspected(topology::NodeId /*observer*/,
                 topology::NodeId neighbor) const override {
    return config_.faults != nullptr && current_round_ > 0 &&
           config_.faults->confirmed_down(current_round_, neighbor);
  }

  /// Executes exactly one synchronous round — message exchange
  /// included, evaluation/stats excluded. `round` is 1-based. This is
  /// the step-driven entry point (DgdIteration::step); run() composes
  /// it with the measurement machinery.
  void step_round(RoundHooks<Payload>& hooks, std::size_t round) {
    const std::size_t n = hooks.node_count;
    SNAP_REQUIRE(n > 0);
    ensure_capacity(n);
    current_round_ = round;
    round_frames_dropped_ = 0;
    round_frames_corrupted_ = 0;
    round_links_activated_ = 0;
    // Resets the transport's per-round tallies (STATE_SYNC bytes) and,
    // on the socket backend, stamps the round onto the wire clock —
    // before the churn hook, whose handoff frames belong to this round.
    transport_->begin_round(round);

    // Materialize this round's fault schedule and surface confirmed
    // churn before any phase runs, so the scheme reacts (re-projected
    // weights, membership masks) with the same view on every fabric.
    if (config_.faults != nullptr) {
      config_.faults->ensure_round(round);
      const net::ChurnDelta& delta = config_.faults->churn_delta(round);
      if (cost_ && (!delta.joined.empty() || !delta.left.empty())) {
        // A membership epoch may have grown the topology: refresh the
        // routing table before any handoff frame needs a route.
        cost_->set_hop_matrix(net::HopMatrix(
            config_.faults->current_graph(), /*require_connected=*/false));
      }
      if (hooks.on_churn && !delta.empty()) {
        StagingSink sink(&replies_);
        hooks.on_churn(round, delta, sink);
        // Churn-time sends ride the round's first delivery wave.
        for (topology::NodeId i = 0; i < n; ++i) {
          for (auto& envelope : replies_[i]) post(i, std::move(envelope), round);
          replies_[i].clear();
        }
      }
      // Component-structure changes fire after churn: a crash-driven
      // relabel sees the post-epoch membership, and heal-time boundary
      // syncs are staged before any phase consumes the round's inbox.
      const net::PartitionDelta& pdelta = config_.faults->partition_delta(round);
      if (hooks.on_partition && !pdelta.empty()) {
        StagingSink sink(&replies_);
        hooks.on_partition(round, pdelta, sink);
        for (topology::NodeId i = 0; i < n; ++i) {
          for (auto& envelope : replies_[i]) post(i, std::move(envelope), round);
          replies_[i].clear();
        }
      }
    }
    const auto down = [&](topology::NodeId i) {
      return config_.faults != nullptr && config_.faults->node_down(round, i);
    };

    // Subclass preamble (GossipFabric's activation draw) — after churn
    // is surfaced so the schedule sees the post-epoch membership, before
    // begin_round so the scheme reacts ahead of any phase.
    prepare_round(round, hooks);

    if (hooks.begin_round) hooks.begin_round(round);

    if (hooks.local_update) {
      run_per_node(n, hooks.parallel_local_update, [&](topology::NodeId i) {
        if (!down(i)) hooks.local_update(i);
      });
    }
    if (config_.faults != nullptr && hooks.node_skipped) {
      for (topology::NodeId i = 0; i < n; ++i) {
        if (down(i)) hooks.node_skipped(i);
      }
    }

    // Filter/encode fans out into per-node staging slots ...
    if (hooks.collect) {
      if (hooks.parallel_collect) {
        pool_.parallel_for(0, n, [&](std::size_t i) {
          staged_[i] = down(i) ? std::vector<Envelope<Payload>>{}
                               : hooks.collect(i);
        });
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          staged_[i] = down(i) ? std::vector<Envelope<Payload>>{}
                               : hooks.collect(i);
        }
      }
    }
    // ... and the posts + byte accounting replay serially in node order.
    for (topology::NodeId i = 0; i < n; ++i) {
      for (auto& envelope : staged_[i]) {
        post(i, std::move(envelope), round);
      }
      staged_[i].clear();
    }

    if (hooks.after_send) hooks.after_send();

    deliver_waves(hooks, n, round);
  }

  core::TrainResult run(RoundHooks<Payload>& hooks) override {
    SNAP_REQUIRE_MSG(hooks.evaluate != nullptr,
                     "run() requires an evaluate hook");
    core::ConvergenceDetector detector(config_.convergence);
    core::TrainResult result;
    double sim_seconds = 0.0;

    std::size_t round = 0;
    if (config_.checkpoint.resume && !config_.checkpoint.path.empty()) {
      // The transport must exist before its wire positions can be
      // restored — force the lazy build now.
      ensure_capacity(hooks.node_count);
      if (std::optional<RunCheckpoint> saved =
              load_run_checkpoint(config_.checkpoint.path)) {
        restore_from_checkpoint(*saved, hooks, detector, result,
                                sim_seconds, round);
      }
      // No (valid) blob: the crash predated the first checkpoint write,
      // so replay from round 0 — determinism makes the replay bitwise
      // the prefix the original run produced.
    }
    while (round < config_.convergence.max_iterations &&
           !detector.converged()) {
      ++round;
      step_round(hooks, round);

      const bool measure_accuracy =
          (round % std::max<std::size_t>(config_.eval.every, 1)) == 0 ||
          round == config_.convergence.max_iterations;
      const RoundEval eval = hooks.evaluate(round, measure_accuracy);

      core::IterationStats stats;
      stats.train_loss = eval.train_loss;
      stats.consensus_residual = eval.consensus_residual;
      if (eval.evaluated) {
        stats.test_accuracy = eval.test_accuracy;
        stats.evaluated = true;
      }
      if (cost_) {
        cost_->end_iteration();
        stats.bytes = cost_->bytes_per_iteration().back();
        stats.cost = cost_->cost_per_iteration().back();
        stats.max_node_inbound_bytes =
            cost_->max_inbound_per_iteration().back();
        stats.max_node_outbound_bytes =
            cost_->max_outbound_per_iteration().back();
      }
      sim_seconds += config_.timing.round_duration(
          config_.round_compute_flops, stats.max_node_inbound_bytes,
          stats.max_node_outbound_bytes);
      stats.sim_seconds = sim_seconds;
      if (config_.faults != nullptr) {
        stats.links_down = config_.faults->down_link_count(round);
        stats.nodes_down = config_.faults->down_node_count(round);
        stats.frames_dropped = round_frames_dropped_;
        stats.frames_corrupted = round_frames_corrupted_;
        stats.alive_nodes = config_.faults->alive_member_count(round);
        stats.nodes_joined =
            config_.faults->churn_delta(round).joined.size();
        stats.state_sync_bytes = transport_->state_sync_bytes();
        stats.components = config_.faults->component_count(round);
        stats.largest_component_frac =
            config_.faults->largest_component_fraction(round);
        stats.partition_epoch = config_.faults->partition_epoch(round);
      } else {
        stats.alive_nodes = hooks.node_count;
      }
      stats.links_activated = round_links_activated_;
      if (hooks.annotate_stats) hooks.annotate_stats(stats);
      result.iterations.push_back(stats);

      detector.observe(eval.train_loss, eval.consensus_residual,
                       stats.evaluated ? stats.test_accuracy : -1.0);
      if (hooks.end_round) hooks.end_round(round);
      maybe_write_checkpoint(round, hooks, result, sim_seconds);
    }

    result.converged = detector.converged();
    result.converged_after =
        result.converged ? detector.converged_after() : round;
    if (cost_) {
      result.total_bytes = cost_->total_bytes();
      result.total_cost = cost_->total_cost();
    }
    result.total_sim_seconds = sim_seconds;
    return result;
  }

 protected:
  /// Round-preamble extension point for shared-clock subclasses.
  /// GossipFabric draws the round's activation set here and reports its
  /// size through `round_links_activated_` (stamped into
  /// IterationStats::links_activated; 0 means "every link eligible" —
  /// the plain sync semantics).
  virtual void prepare_round(std::size_t /*round*/,
                             RoundHooks<Payload>& /*hooks*/) {}

  const FabricConfig& fabric_config() const noexcept { return config_; }

  std::uint64_t round_links_activated_ = 0;

 private:
  // Staged replies from the mix phase, indexed by sender.
  class StagingSink final : public MessageSink<Payload> {
   public:
    explicit StagingSink(std::vector<std::vector<Envelope<Payload>>>* slots)
        : slots_(slots) {}
    void send(topology::NodeId from, topology::NodeId to, Payload payload,
              std::size_t wire_bytes, bool state_sync) override {
      SNAP_REQUIRE(from < slots_->size());
      (*slots_)[from].push_back(
          Envelope<Payload>{to, std::move(payload), wire_bytes, state_sync});
    }

   private:
    std::vector<std::vector<Envelope<Payload>>>* slots_;
  };

  /// Rebuilds every run()-owned piece of state from a round-aligned
  /// checkpoint so the loop continues at `saved.round + 1` bitwise
  /// identically to a run that never stopped. The algorithm blob is
  /// applied first (a truncated blob aborts before anything mutates);
  /// the fault schedule is re-materialized by replaying the seeded
  /// draws — churn hooks do NOT re-fire, their effects already live in
  /// the algorithm blob. The convergence detector is restored by
  /// re-observing the saved series exactly as run() observed it.
  void restore_from_checkpoint(const RunCheckpoint& saved,
                               RoundHooks<Payload>& hooks,
                               core::ConvergenceDetector& detector,
                               core::TrainResult& result,
                               double& sim_seconds, std::size_t& round) {
    SNAP_REQUIRE_MSG(hooks.load_state != nullptr,
                     "checkpoint resume requires a load_state hook");
    SNAP_REQUIRE_MSG(saved.round >= 1 &&
                         saved.iterations.size() == saved.round,
                     "checkpoint round/series mismatch: round "
                         << saved.round << " with "
                         << saved.iterations.size() << " iterations");
    const auto saved_round = static_cast<std::size_t>(saved.round);
    common::ByteReader algo(saved.algorithm_state);
    SNAP_REQUIRE_MSG(hooks.load_state(algo) && algo.remaining() == 0,
                     "checkpoint algorithm blob failed to restore");
    if (config_.faults != nullptr) {
      config_.faults->ensure_round(saved_round);
      SNAP_REQUIRE_MSG(
          config_.faults->membership_epoch(saved_round) ==
              saved.membership_epoch,
          "checkpoint was written against a different fault schedule "
          "(membership epoch "
              << saved.membership_epoch << " vs "
              << config_.faults->membership_epoch(saved_round) << ")");
      SNAP_REQUIRE_MSG(saved.alive.size() == hooks.node_count,
                       "checkpoint alive mask sized for "
                           << saved.alive.size() << " nodes, hooks declare "
                           << hooks.node_count);
      for (topology::NodeId i = 0; i < hooks.node_count; ++i) {
        const std::uint8_t now =
            config_.faults->confirmed_down(saved_round, i) ? 0 : 1;
        SNAP_REQUIRE_MSG(saved.alive[i] == now,
                         "checkpoint alive mask disagrees with the "
                         "replayed fault schedule at node "
                             << i);
      }
      if (cost_) {
        // A membership epoch may have grown the topology since round 0;
        // refresh the routing table unconditionally so post-resume flows
        // route exactly as pre-crash ones did.
        cost_->set_hop_matrix(net::HopMatrix(
            config_.faults->current_graph(), /*require_connected=*/false));
      }
    }
    result.iterations = saved.iterations;
    sim_seconds = saved.sim_seconds;
    for (const core::IterationStats& stats : saved.iterations) {
      detector.observe(stats.train_loss, stats.consensus_residual,
                       stats.evaluated ? stats.test_accuracy : -1.0);
    }
    if (cost_) cost_->restore_totals(saved.total_bytes, saved.total_cost);
    common::ByteReader wire(saved.wire_state);
    SNAP_REQUIRE_MSG(transport_->restore_wire_state(wire) &&
                         wire.remaining() == 0,
                     "checkpoint wire blob failed to restore");
    round = static_cast<std::size_t>(saved.round);
  }

  /// Writes the round-aligned checkpoint after end_round on configured
  /// rounds. Runs serially (nothing else touches state here), writes
  /// atomically (tmp + rename), and is deterministic: a resumed run
  /// re-writes byte-identical blobs on the rounds it replays past.
  void maybe_write_checkpoint(std::size_t round, RoundHooks<Payload>& hooks,
                              const core::TrainResult& result,
                              double sim_seconds) {
    const CheckpointConfig& ckpt = config_.checkpoint;
    if (ckpt.every == 0 || ckpt.path.empty() || round % ckpt.every != 0) {
      return;
    }
    SNAP_REQUIRE_MSG(hooks.save_state != nullptr,
                     "checkpoint.every requires a save_state hook");
    RunCheckpoint snapshot;
    snapshot.round = round;
    snapshot.sim_seconds = sim_seconds;
    if (config_.faults != nullptr) {
      snapshot.membership_epoch = config_.faults->membership_epoch(round);
      snapshot.alive.resize(hooks.node_count);
      for (topology::NodeId i = 0; i < hooks.node_count; ++i) {
        snapshot.alive[i] =
            config_.faults->confirmed_down(round, i) ? 0 : 1;
      }
    }
    snapshot.iterations = result.iterations;
    if (cost_) {
      snapshot.total_bytes = cost_->total_bytes();
      snapshot.total_cost = cost_->total_cost();
    }
    common::ByteWriter wire;
    transport_->save_wire_state(wire);
    snapshot.wire_state = wire.take();
    common::ByteWriter algo;
    hooks.save_state(algo);
    snapshot.algorithm_state = algo.take();
    SNAP_REQUIRE_MSG(save_run_checkpoint(ckpt.path, snapshot),
                     "failed to write checkpoint " << ckpt.path);
  }

  void ensure_capacity(std::size_t n) {
    if (staged_.size() != n) {
      staged_.assign(n, {});
      replies_.assign(n, {});
      if (transport_ == nullptr) {
        transport_ = std::make_unique<net::SimTransport<Payload>>(n);
      }
      SNAP_REQUIRE_MSG(transport_->node_count() == n,
                       "transport built for " << transport_->node_count()
                                              << " nodes, hooks declare "
                                              << n);
      transport_->attach_cost(cost_ ? &*cost_ : nullptr);
    }
  }

  void run_per_node(std::size_t n, bool parallel,
                    const std::function<void(topology::NodeId)>& body) {
    if (parallel) {
      pool_.parallel_for(0, n, [&](std::size_t i) { body(i); });
    } else {
      for (topology::NodeId i = 0; i < n; ++i) body(i);
    }
  }

  /// Charges and posts one envelope through the transport seam.
  /// wire_bytes == 0 marks a co-located hand-off: nothing crosses the
  /// network and nothing is charged (the transport still carries it so
  /// the receiver's mix phase is uniform). With a FaultInjector: frames
  /// on a down link (or touching a down node) are lost before the wire;
  /// corrupted frames cross the wire — and are charged — but fail
  /// decode and are never delivered. The fault draws are seeded, so
  /// every shard replica resolves them identically and corrupted frames
  /// never need to travel.
  void post(topology::NodeId from, Envelope<Payload> envelope,
            std::size_t round) {
    if (net::FaultInjector* faults = config_.faults;
        faults != nullptr && !envelope.state_sync) {
      // STATE_SYNC handoffs bypass the loss/corruption draws: they ride
      // the reliable coordinated join handshake (and this round's link
      // state was materialized before the join was announced).
      if (faults->link_down(round, from, envelope.to)) {
        ++round_frames_dropped_;
        return;
      }
      if (envelope.wire_bytes > 0 &&
          faults->frame_corrupted(round, from, envelope.to, 0)) {
        transport_->charge(from, envelope.to, envelope.wire_bytes,
                           envelope.state_sync);
        ++round_frames_corrupted_;
        return;
      }
    }
    transport_->post(from, envelope.to, std::move(envelope.payload),
                     envelope.wire_bytes, envelope.state_sync);
  }

  /// Flips the mailbox and runs mix waves until no node replies. Wave 1
  /// is the round's main exchange; the parameter server's push-back
  /// lands in wave 2. Bounded to catch hooks that ping-pong forever.
  void deliver_waves(RoundHooks<Payload>& hooks, std::size_t n,
                     std::size_t round) {
    if (!hooks.mix) return;
    constexpr std::size_t kMaxWaves = 8;
    StagingSink sink(&replies_);
    for (std::size_t wave = 0; wave < kMaxWaves; ++wave) {
      transport_->flip_round();
      // Receivers touch only their own state (and their own reply
      // slot), so the wave fans out; replies replay serially below.
      run_per_node(n, hooks.parallel_mix, [&](topology::NodeId i) {
        if (config_.faults != nullptr && config_.faults->node_down(round, i)) {
          return;  // a down node processes nothing this round
        }
        const auto& inbox = transport_->inbox(i);
        hooks.mix(i, std::span<const Delivery<Payload>>(inbox), sink);
      });
      bool any_reply = false;
      for (topology::NodeId i = 0; i < n; ++i) {
        for (auto& envelope : replies_[i]) {
          post(i, std::move(envelope), round);
          any_reply = true;
        }
        replies_[i].clear();
      }
      if (!any_reply) {
        // Drain the (empty) outgoing buffers so the next round's inbox
        // does not replay this wave's messages.
        transport_->flip_round();
        return;
      }
    }
    SNAP_REQUIRE_MSG(false, "mix-phase replies did not quiesce within "
                                << kMaxWaves << " waves");
  }

  FabricConfig config_;
  common::ThreadPool pool_;
  std::optional<net::CostTracker> cost_;
  std::unique_ptr<net::Transport<Payload>> transport_;
  std::vector<std::vector<Envelope<Payload>>> staged_;
  std::vector<std::vector<Envelope<Payload>>> replies_;
  std::size_t current_round_ = 0;
  std::uint64_t round_frames_dropped_ = 0;
  std::uint64_t round_frames_corrupted_ = 0;
};

}  // namespace snap::runtime

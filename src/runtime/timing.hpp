// Wall-clock round timing — quantifies the paper's §I incast argument.
//
// The synchronous-round simulation abstracts time away; this model puts
// it back. A round's duration is the slowest node's
//     compute time + transfer time,
// where transfer time is bottlenecked by the busiest NIC: every byte a
// node receives (or sends) must cross its own access link, so a
// parameter server receiving (N−1) dense gradients serializes them —
// the incast — while SNAP's peers each receive only degree-many frames.
//
//     round_duration = compute_flops / compute_rate
//                    + max(max_node_inbound, max_node_outbound) / nic_bw
//                    + propagation_delay
//
// This is a deliberate closed-form model (store-and-forward with one
// bottleneck link per node), not a packet simulator: it is exact for
// the synchronous exchange pattern both SNAP and the PS scheme use, and
// it composes directly with the byte counts the trainers already
// record. SyncFabric uses it to stamp `IterationStats::sim_seconds`;
// the event-driven AsyncFabric simulates time natively instead.
#pragma once

#include <cstdint>

#include "core/training.hpp"

namespace snap::runtime {

struct TimingModel {
  /// Access-link (NIC) bandwidth in bytes/second. Paper testbed: 1 Gbps.
  double nic_bandwidth_bytes_per_s = 1e9 / 8.0;
  /// One-way propagation + protocol overhead per round, seconds.
  double propagation_s = 1e-3;
  /// Node compute throughput in FLOP/s for gradient evaluation.
  double compute_flops_per_s = 5e9;

  /// Duration of one synchronous round (seconds).
  double round_duration(double gradient_flops,
                        std::uint64_t max_node_inbound_bytes,
                        std::uint64_t max_node_outbound_bytes) const;

  /// Total wall-clock time of a recorded run: Σ rounds until
  /// `converged_after` (or the full run when it never converged).
  /// `gradient_flops` is the per-node cost of one local gradient.
  double total_duration(const core::TrainResult& result,
                        double gradient_flops) const;
};

/// Rough FLOP count of one full-batch gradient for a model with
/// `param_count` parameters over `samples` local samples (forward +
/// backward ≈ 4 FLOPs per parameter-sample pair for the dense models in
/// this library).
double gradient_flops(std::size_t param_count, std::size_t samples);

}  // namespace snap::runtime

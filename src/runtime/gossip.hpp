// Gossip activation scheduling: which links exchange this tick.
//
// The gossip fabric replaces full-neighborhood rounds with randomized
// pairwise mixing (Boyd et al.'s randomized gossip; Neglia et al. show
// sparser per-round schedules can match full-neighborhood convergence
// at a fraction of the traffic). Each tick a seeded scheduler activates
// a sparse subset of the alive edges and only those links carry frames:
//
//   - kMatching: a random maximal matching — every node talks to at
//     most ONE partner per tick, the classic pairwise-gossip schedule.
//   - kPushPull: every alive node picks `fanout` alive neighbors; the
//     union of picks (symmetrized) is activated, so a node may serve
//     several partners in one tick but expected per-node traffic stays
//     O(fanout).
//
// Determinism contract: the activation set for a round is a pure
// function of (seed, graph, membership epoch, round) — no rolling RNG
// state. Every draw is a stateless SplitMix64-style hash (the same
// idiom as FaultInjector::frame_corrupted), so the schedule replays
// bitwise for any `threads` value, under any event interleaving, and
// across reruns, including runs where FaultInjector churn grows or
// shrinks the membership: consumers at the same round observe the same
// epoch, hence the same activation set. Transient link bursts do NOT
// enter the schedule — an activated-but-down link simply loses its
// frame (and the sender's backlog carries the updates to the next
// activation), exactly like the other fabrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "topology/graph.hpp"

namespace snap::runtime {

/// How the scheduler picks the activated link subset each tick.
enum class GossipMode {
  kMatching,  ///< random maximal matching: ≤ 1 partner per node
  kPushPull,  ///< every node picks `fanout` neighbors; union activated
};

std::string_view gossip_mode_name(GossipMode mode) noexcept;

/// Parses "matching" / "pushpull" (CLI spelling). Empty optional on
/// anything else.
std::optional<GossipMode> parse_gossip_mode(std::string_view name) noexcept;

/// Knobs for the gossip fabric's activation scheduler.
struct GossipConfig {
  GossipMode mode = GossipMode::kMatching;
  /// kPushPull: neighbors each node picks per tick (clamped to the
  /// node's alive degree). Ignored by kMatching.
  std::size_t fanout = 1;
  /// Seeds the activation hash. 0 = derive from the run's root seed
  /// (trainers substitute their own seed so one printed seed reproduces
  /// the whole run, schedule included).
  std::uint64_t seed = 0;
  /// Synchronized EXTRA-recursion restart every this many rounds
  /// (0 = never). EXTRA's memory recursion is only neutrally stable in
  /// the modes a round's activation leaves untouched (an idle node runs
  /// x⁺ = 2x − x⁻, whose double root at 1 is harmless ONLY while the
  /// static-W telescoped invariant holds); switching the activation
  /// between rounds excites those modes, and the products of the
  /// per-round companion matrices compound the error — empirically a
  /// slow exponential that surfaces after several hundred ticks.
  /// Restarting the recursion on a fixed round schedule (§IV-C licenses
  /// restarts from arbitrary iterates) clears the accumulated memory
  /// before it can compound. Pure function of the round number, so the
  /// determinism contract is untouched. 16 holds the worst observed
  /// growth (hinge losses, small step sizes) flat with no measurable
  /// loss penalty; 64 already visibly drifts on long horizons.
  std::size_t restart_every = 16;
};

/// An activated undirected link, normalized u < v.
using ActivatedLink = std::pair<topology::NodeId, topology::NodeId>;

/// The links activated for `round`, sorted ascending by (u, v). A pure
/// function of its arguments (see the header comment): callers on any
/// fabric, thread count, or replay observe the identical set.
///
/// `alive` masks nodes that may participate (empty = all alive); edges
/// with a masked endpoint are never activated. `epoch` is the
/// membership epoch (0 without elastic membership) — folding it into
/// the hash re-randomizes the schedule when the topology grows, so a
/// joiner's fresh links don't inherit the pre-join activation pattern.
std::vector<ActivatedLink> gossip_activated_links(
    const GossipConfig& config, const topology::Graph& graph,
    std::size_t epoch, std::size_t round, const std::vector<bool>& alive);

}  // namespace snap::runtime

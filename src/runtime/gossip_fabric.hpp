// Randomized-gossip execution: shared clock, sparse activated links.
//
// GossipFabric keeps SyncFabric's phase interleaving and determinism
// discipline wholesale — rounds tick on a shared clock, parallel phases
// write only node-owned slots, stateful effects replay serially — and
// changes exactly one thing: each round a seeded scheduler activates a
// sparse subset of the alive edges (random maximal matching, or a small
// per-node push-pull fan-out) and announces it through the
// `on_activation` hook before the round's phases run. Schemes that
// understand the hook (SNAP/EXTRA trainers) restrict their sends to the
// activated links and rebuild their mixing rows on the activated
// subgraph; schemes that leave the hook unset (the parameter server,
// plain DGD configured without it) get bitwise-identical sync-fabric
// behavior — the degenerate path the topology makes natural, since a
// star's "matching" would serialize the star anyway.
//
// Determinism: the activation set is a pure function of (seed, graph,
// membership epoch, round) — see runtime/gossip.hpp. The draw happens
// in the serial round preamble, after FaultInjector churn is surfaced
// (so the schedule sees the post-epoch graph and confirmed-crash mask)
// and before begin_round. Nothing about the draw depends on thread
// interleaving, so the whole run replays bitwise for any `threads`
// value, across reruns, and under an active FaultPlan.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/gossip.hpp"
#include "runtime/sync_fabric.hpp"

namespace snap::runtime {

template <typename Payload>
class GossipFabric final : public SyncFabric<Payload> {
 public:
  GossipFabric(const FabricConfig& config, const GossipConfig& gossip,
               std::unique_ptr<net::Transport<Payload>> transport = nullptr)
      : SyncFabric<Payload>(config, std::move(transport)),
        gossip_(gossip) {}

  const GossipConfig& gossip_config() const noexcept { return gossip_; }

 protected:
  void prepare_round(std::size_t round,
                     RoundHooks<Payload>& hooks) override {
    if (!hooks.on_activation) return;  // degenerate path: plain sync
    const FabricConfig& config = this->fabric_config();
    net::FaultInjector* faults = config.faults;
    const topology::Graph* graph =
        faults != nullptr ? &faults->current_graph() : config.graph;
    SNAP_REQUIRE_MSG(graph != nullptr,
                     "gossip fabric requires a topology graph");
    const std::size_t epoch =
        faults != nullptr ? faults->membership_epoch(round) : 0;
    alive_.assign(graph->node_count(), true);
    if (faults != nullptr) {
      for (topology::NodeId i = 0; i < graph->node_count(); ++i) {
        alive_[i] = !faults->confirmed_down(round, i);
      }
    }
    links_ = gossip_activated_links(gossip_, *graph, epoch, round, alive_);
    this->round_links_activated_ = links_.size();
    hooks.on_activation(round, std::span<const ActivatedLink>(links_));
  }

 private:
  GossipConfig gossip_;
  std::vector<ActivatedLink> links_;
  std::vector<bool> alive_;
};

}  // namespace snap::runtime

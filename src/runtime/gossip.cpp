#include "runtime/gossip.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace snap::runtime {

namespace {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Stateless per-(seed, epoch, round, a, b) priority. The (a, b) pair is
/// directed for push-pull ranks and normalized by callers for edges.
std::uint64_t priority(std::uint64_t seed, std::size_t epoch,
                       std::size_t round, topology::NodeId a,
                       topology::NodeId b) noexcept {
  std::uint64_t x = mix64(seed ^ 0xA0761D6478BD642FULL);
  x = mix64(x ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(round)));
  x = mix64(x ^ (0xE7037ED1A0B428DBULL * static_cast<std::uint64_t>(epoch)));
  x = mix64(x ^ ((static_cast<std::uint64_t>(a) << 32) |
                 static_cast<std::uint64_t>(b)));
  return x;
}

bool is_alive(const std::vector<bool>& alive, topology::NodeId i) {
  return alive.empty() || alive[i];
}

}  // namespace

std::string_view gossip_mode_name(GossipMode mode) noexcept {
  switch (mode) {
    case GossipMode::kMatching:
      return "matching";
    case GossipMode::kPushPull:
      return "pushpull";
  }
  return "?";
}

std::optional<GossipMode> parse_gossip_mode(std::string_view name) noexcept {
  if (name == "matching") return GossipMode::kMatching;
  if (name == "pushpull") return GossipMode::kPushPull;
  return std::nullopt;
}

std::vector<ActivatedLink> gossip_activated_links(
    const GossipConfig& config, const topology::Graph& graph,
    std::size_t epoch, std::size_t round, const std::vector<bool>& alive) {
  SNAP_REQUIRE_MSG(alive.empty() || alive.size() == graph.node_count(),
                   "alive mask size must match the graph");
  const std::uint64_t seed = config.seed;
  std::vector<ActivatedLink> out;

  if (config.mode == GossipMode::kMatching) {
    // Random maximal matching: rank the alive edges by a stateless hash
    // and take greedily — each node ends up in at most one pair. Ties
    // break on the (u, v) ids so the order is total.
    struct Ranked {
      std::uint64_t rank;
      topology::NodeId u;
      topology::NodeId v;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(graph.edge_count());
    for (const auto& [u, v] : graph.edges()) {
      if (!is_alive(alive, u) || !is_alive(alive, v)) continue;
      ranked.push_back({priority(seed, epoch, round, u, v), u, v});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) {
                if (a.rank != b.rank) return a.rank < b.rank;
                if (a.u != b.u) return a.u < b.u;
                return a.v < b.v;
              });
    std::vector<bool> matched(graph.node_count(), false);
    for (const Ranked& edge : ranked) {
      if (matched[edge.u] || matched[edge.v]) continue;
      matched[edge.u] = true;
      matched[edge.v] = true;
      out.push_back({edge.u, edge.v});
    }
  } else {
    // Push-pull: node i ranks its alive neighbors by a directed hash
    // and picks the `fanout` smallest; the union of all picks is
    // activated (an edge both endpoints picked is one exchange).
    const std::size_t fanout = std::max<std::size_t>(config.fanout, 1);
    std::vector<std::pair<std::uint64_t, topology::NodeId>> ranks;
    for (topology::NodeId i = 0; i < graph.node_count(); ++i) {
      if (!is_alive(alive, i)) continue;
      ranks.clear();
      for (const auto j : graph.neighbors(i)) {
        if (!is_alive(alive, j)) continue;
        ranks.push_back({priority(seed, epoch, round, i, j), j});
      }
      const std::size_t picks = std::min(fanout, ranks.size());
      std::partial_sort(ranks.begin(), ranks.begin() + picks, ranks.end());
      for (std::size_t k = 0; k < picks; ++k) {
        const topology::NodeId j = ranks[k].second;
        out.push_back({std::min(i, j), std::max(i, j)});
      }
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace snap::runtime

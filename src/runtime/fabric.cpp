#include "runtime/fabric.hpp"

#include "common/check.hpp"

namespace snap::runtime {

std::string_view fabric_name(FabricKind kind) noexcept {
  switch (kind) {
    case FabricKind::kSync:
      return "sync";
    case FabricKind::kAsync:
      return "async";
    case FabricKind::kGossip:
      return "gossip";
  }
  return "?";
}

std::optional<FabricKind> parse_fabric_kind(
    std::string_view name) noexcept {
  if (name == "sync") return FabricKind::kSync;
  if (name == "async") return FabricKind::kAsync;
  if (name == "gossip") return FabricKind::kGossip;
  return std::nullopt;
}

std::vector<double> linear_compute_spread(std::size_t n, double base_s,
                                          double spread) {
  SNAP_REQUIRE(base_s > 0.0);
  SNAP_REQUIRE(spread >= 0.0);
  std::vector<double> out(n, base_s);
  if (n < 2) return out;
  for (std::size_t i = 0; i < n; ++i) {
    const double position =
        static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = base_s * (1.0 + spread * position);
  }
  return out;
}

}  // namespace snap::runtime

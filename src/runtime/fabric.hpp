// Pluggable round fabric — the execution layer under every trainer.
//
// The paper's algorithms (SNAP's filtered EXTRA, DGD, the parameter
// server) are *round-structured*: each node repeatedly runs
//     local update → filter/encode → deliver → mix → evaluate.
// What used to be four hand-rolled copies of that loop is now one
// algorithm-side contract (RoundHooks) executed by a RoundFabric:
//
//   - SyncFabric — the paper's shared-clock exchange (§II-B/§IV-D).
//     Reproduces the pre-refactor semantics bit for bit, including the
//     `threads` determinism contract: parallel phases write only
//     per-node slots, and everything stateful (mailbox posts, byte
//     accounting, convergence folds) replays serially in node order.
//     Simulated time comes from the closed-form TimingModel.
//
//   - AsyncFabric — event-driven execution on net::EventQueue. Each
//     node has its own compute-time distribution, each link a
//     latency/bandwidth pair; frames arrive when they arrive and nodes
//     mix with whatever neighbor parameters are freshest. Simulated
//     time is native and staleness is tracked per directed edge.
//
// The hooks are deliberately scheme-agnostic: a hook never touches a
// mailbox, a cost tracker, or a clock — it only transforms node state
// and emits typed envelopes. That is what makes the two fabrics
// interchangeable underneath an unchanged algorithm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/binary_io.hpp"
#include "common/thread_pool.hpp"
#include "core/training.hpp"
#include "net/fault_injector.hpp"
#include "net/mailbox.hpp"
#include "runtime/gossip.hpp"
#include "runtime/run_checkpoint.hpp"
#include "runtime/timing.hpp"
#include "topology/graph.hpp"

namespace snap::runtime {

/// One outbound message produced by a node's filter/encode phase.
/// `wire_bytes` is the full on-wire size charged to the byte accounting
/// and serialized through NIC bandwidth by the async fabric; 0 marks a
/// free local hand-off (no charge, no transfer time).
template <typename Payload>
struct Envelope {
  topology::NodeId to = 0;
  Payload payload{};
  std::size_t wire_bytes = 0;
  /// Marks a full-model membership handoff (STATE_SYNC on the wire):
  /// the bytes are charged like any frame, but tallied separately so
  /// warm-start ablations can report the handoff overhead.
  bool state_sync = false;
};

/// What a node receives: the fabric delivers the mailbox's own message
/// type, so sync delivery is literally the RoundMailbox inbox.
template <typename Payload>
using Delivery = typename net::RoundMailbox<Payload>::Message;

/// What the evaluate phase reports back to the fabric each round.
struct RoundEval {
  double train_loss = 0.0;
  double consensus_residual = 0.0;
  double test_accuracy = 0.0;
  bool evaluated = false;  ///< whether test_accuracy was computed
};

/// Lets the mix phase reply with follow-up messages in the same round
/// (the parameter server's push-back). Sync fabrics deliver these in an
/// extra mailbox wave; async fabrics put them on the wire immediately.
template <typename Payload>
class MessageSink {
 public:
  /// `state_sync` marks a membership handoff frame (see Envelope).
  virtual void send(topology::NodeId from, topology::NodeId to,
                    Payload payload, std::size_t wire_bytes,
                    bool state_sync = false) = 0;

 protected:
  ~MessageSink() = default;
};

/// The algorithm side of a round, as per-phase callbacks. Phases marked
/// `parallel_*` may fan out on the fabric's pool; their bodies must
/// write only node-owned state (the ThreadPool determinism contract).
/// Unset std::function members are simply skipped.
///
/// Call order per round r (sync; async interleaves rounds per node but
/// preserves the per-node order):
///   begin_round(r)                       [serial, once per round]
///   local_update(i)                      [per node]
///   collect(i) -> envelopes              [per node]
///   ... fabric sends, charges bytes ...
///   after_send()                         [serial; sync only]
///   mix(i, deliveries, sink)             [per receiving node]
///   evaluate(r, measure_accuracy)        [serial]
///   end_round(r)                         [serial, after the fabric has
///                                         observed the eval]
template <typename Payload>
struct RoundHooks {
  std::size_t node_count = 0;

  /// Serial round preamble (advance failure draws, draw minibatches).
  std::function<void(std::size_t round)> begin_round;

  /// Node-local compute: gradient / EXTRA step / view rotation.
  std::function<void(topology::NodeId node)> local_update;
  bool parallel_local_update = true;

  /// Filter + frame: returns everything `node` transmits this round.
  std::function<std::vector<Envelope<Payload>>(topology::NodeId node)>
      collect;
  bool parallel_collect = true;

  /// Serial hook between send and delivery (SNAP's synchronized EXTRA
  /// restart rides here). Not invoked by async fabrics — there is no
  /// global post-send instant; see AsyncFabric's notes.
  std::function<void()> after_send;

  /// Folds arrived messages into `node`'s state. Sync fabrics deliver a
  /// whole round's inbox at once; the async fabric delivers frames one
  /// at a time, as they arrive.
  std::function<void(topology::NodeId node,
                     std::span<const Delivery<Payload>> deliveries,
                     MessageSink<Payload>& sink)>
      mix;
  bool parallel_mix = true;

  /// Serial round postamble: observers, double-buffer swaps, restarts
  /// that may tolerate async skew. Runs after the fabric recorded the
  /// round's stats and fed the convergence detector.
  std::function<void(std::size_t round)> end_round;

  /// Whole-system measurement: aggregate loss, consensus residual and
  /// (when `measure_accuracy`) test accuracy. Required by run().
  std::function<RoundEval(std::size_t round, bool measure_accuracy)>
      evaluate;

  /// Async-only gate: may `node` begin `round`? Defaults to "always" —
  /// free-running nodes. The parameter server uses it to wait for the
  /// previous round's parameter push.
  std::function<bool(topology::NodeId node, std::size_t round)> ready;

  /// Async-only gate: is round `round` complete enough to evaluate?
  /// Defaults to "every node finished its local round". The parameter
  /// server additionally waits for the server step.
  std::function<bool(std::size_t round)> eval_ready;

  /// Fault-layer callback: membership changes the injector *confirmed*
  /// — a crash that outlived the confirmation window, the restart that
  /// ended one, or a coordinated join/graceful-leave. Serial. SyncFabric
  /// fires it at the top of the round with the whole round's delta;
  /// AsyncFabric fires failure-detected transitions (crashed/restarted)
  /// per node when the silence window elapses / the node wakes, and
  /// coordinated transitions (joined/left) when the round they were
  /// announced at begins. The sink lets schemes react on the wire
  /// immediately (the parameter server re-aggregates without the dead
  /// worker's gradient; SNAP donates a STATE_SYNC warm start to a
  /// joiner).
  std::function<void(std::size_t round, const net::ChurnDelta& delta,
                     MessageSink<Payload>& sink)>
      on_churn;

  /// Fault-layer callback: the component structure of the *effective*
  /// alive graph changed — a sustained link outage (or scheduled cut)
  /// split the topology, a heal merged components back, or confirmed
  /// churn changed the labeling. Fired serially AFTER on_churn in the
  /// same round preamble, so crash-driven label changes see the
  /// post-churn membership, and heal-time boundary syncs staged through
  /// the sink ride the round's first delivery wave (before any mix).
  /// The delta carries the new labeling, the healed boundary edges, and
  /// the monotone partition epoch; schemes use it to re-project W into
  /// per-component blocks (split) and to exchange boundary state before
  /// the merged component restarts (heal). Only fired when a
  /// FaultInjector is attached and tracking partitions.
  std::function<void(std::size_t round, const net::PartitionDelta& delta,
                     MessageSink<Payload>& sink)>
      on_partition;

  /// Fault-layer callback: invoked serially in place of a down node's
  /// local_update/collect each round it is held down (sync fabric
  /// only; async nodes simply go dormant). DGD uses it to keep its
  /// double-buffer coherent for skipped nodes.
  std::function<void(topology::NodeId node)> node_skipped;

  /// Checkpoint hooks: serialize / restore everything the scheme owns
  /// that the fabric cannot see — trainer params + EXTRA memory, APE
  /// controllers, RNG stream positions, membership backlog. save_state
  /// runs serially right after end_round on checkpoint rounds;
  /// load_state runs once before round 1 on resume and returns false if
  /// the blob is unusable (wrong shape/version), which aborts the
  /// resume loudly rather than continuing from half a state. Schemes
  /// that leave these unset cannot be checkpointed.
  std::function<void(common::ByteWriter& writer)> save_state;
  std::function<bool(common::ByteReader& reader)> load_state;

  /// Gossip-layer callback: the links the scheduler activated for this
  /// round (sorted, u < v, alive endpoints only). Fired serially in the
  /// round preamble — after confirmed churn is surfaced, before
  /// begin_round — by GossipFabric only. A scheme that participates in
  /// gossip transmits only on these links and builds its per-activation
  /// effective mixing from them; a scheme that leaves this unset is run
  /// with full sync semantics (the degenerate path — DGD and the
  /// parameter server ignore the activation schedule entirely).
  std::function<void(std::size_t round,
                     std::span<const ActivatedLink> links)>
      on_activation;

  /// Scheme-owned telemetry: invoked serially on each round's
  /// IterationStats right before the fabric records it, so schemes can
  /// stamp columns the fabric cannot see (the topology sparsifier's
  /// links_pruned / effective_edges / slem_after_prune). Must touch
  /// only stats fields — the fabric has already filled its own.
  std::function<void(core::IterationStats& stats)> annotate_stats;
};

/// Which execution engine runs the rounds.
enum class FabricKind {
  kSync,    ///< shared-clock rounds, bitwise-deterministic (default)
  kAsync,   ///< event-driven, heterogeneous compute/links, staleness
  kGossip,  ///< shared clock, but only a sparse activated link subset
            ///< exchanges each tick (randomized pairwise mixing)
};

std::string_view fabric_name(FabricKind kind) noexcept;

/// Parses "sync" / "async" / "gossip" (CLI spelling). Empty optional on
/// anything else.
std::optional<FabricKind> parse_fabric_kind(std::string_view name) noexcept;

/// Per-link parameter override for the async fabric. Matches the
/// undirected pair {u, v}; zero fields inherit the global defaults.
struct LinkOverride {
  topology::NodeId u = 0;
  topology::NodeId v = 0;
  double latency_s = 0.0;               ///< one-way, total (not per hop)
  double bandwidth_bytes_per_s = 0.0;   ///< replaces both endpoints' NICs
};

/// Heterogeneity model for AsyncFabric: where simulated time comes from.
struct AsyncTimingConfig {
  /// Mean seconds one node spends on its local update each round.
  double compute_s = 1e-3;
  /// Per-node compute-time overrides (empty = homogeneous; otherwise
  /// one entry per node). This is the straggler knob.
  std::vector<double> node_compute_s;
  /// Relative uniform jitter on every compute draw: each round's
  /// compute time is base · (1 + U[−jitter, +jitter]). 0 = none.
  double compute_jitter = 0.0;
  /// Access-link bandwidth, bytes/second (paper testbed: 1 Gbps).
  double nic_bandwidth_bytes_per_s = 1e9 / 8.0;
  /// Per-node NIC overrides (empty = homogeneous).
  std::vector<double> node_nic_bandwidth;
  /// One-way propagation per hop, seconds (multi-hop PS flows pay it
  /// per hop of the least-hop route).
  double link_latency_s = 1e-3;
  /// Per-link exceptions to the defaults above.
  std::vector<LinkOverride> link_overrides;
  /// SSP-style bound: a node may run at most this many rounds ahead of
  /// the slowest graph neighbor. 0 = unbounded (fully free-running).
  std::size_t max_staleness_rounds = 0;
  /// Seeds the compute-jitter streams (one forked stream per node).
  std::uint64_t seed = 1;
};

/// Evenly spreads per-node compute times over [base_s, base_s·(1 +
/// spread)]: node 0 is the fastest, node n−1 the slowest. spread = 0
/// (or n = 1) is homogeneous. The standard heterogeneous-node scenario
/// for benches and the CLI.
std::vector<double> linear_compute_spread(std::size_t n, double base_s,
                                          double spread);

/// Recovery semantics for runs with a FaultInjector attached.
struct FaultRecoveryConfig {
  /// Async: silence window (seconds) after which a neighbor that has
  /// not delivered a frame is *suspected* (RoundFabric::suspected) and
  /// a dormant node's crash is confirmed to the scheme (on_churn).
  /// 0 = derive from the timing model (a generous multiple of the
  /// slowest per-round compute + latency).
  double suspect_after_s = 0.0;
  /// Async: backoff before the first retransmission of a frame lost to
  /// a down link or corruption; doubles per attempt.
  double retry_backoff_s = 0.02;
  /// Async: bounded retransmissions per frame. 0 disables retry.
  std::size_t max_retries = 2;
  /// Ceiling on the doubled backoff (seconds). The doubling sequence
  /// retry_backoff_s · 2^attempt overflows a double's exponent range
  /// after ~1024 attempts; every consumer of these semantics (async
  /// retransmission, the socket transport's dial and reconnect loops)
  /// must go through bounded_backoff, which caps at this value.
  double max_backoff_s = 5.0;
};

/// The backoff before retry `attempt` (0-based) under `recovery`:
/// retry_backoff_s · 2^attempt, saturated at max_backoff_s. Overflow-
/// safe for any attempt count — the exponent is clamped before the
/// multiply, so the result never becomes inf even at attempt ≫ 1024.
inline double bounded_backoff(const FaultRecoveryConfig& recovery,
                              std::size_t attempt) noexcept {
  const double cap =
      recovery.max_backoff_s > 0.0 ? recovery.max_backoff_s : 5.0;
  if (recovery.retry_backoff_s <= 0.0) return 0.0;
  if (recovery.retry_backoff_s >= cap) return cap;
  // 2^63 · any positive backoff already exceeds every sane cap; clamping
  // the exponent keeps the shift defined and the double finite.
  const std::size_t exponent = attempt < 63 ? attempt : 63;
  const double scaled =
      recovery.retry_backoff_s *
      static_cast<double>(std::uint64_t{1} << exponent);
  return scaled < cap ? scaled : cap;
}

/// Everything a fabric needs besides the algorithm itself.
struct FabricConfig {
  /// Thread-pool width for the parallel phases (0 = hardware threads).
  std::size_t threads = 1;
  /// Topology for byte/cost accounting and hop-aware latency. nullptr
  /// disables accounting (DGD's abstract mixing-matrix mode).
  const topology::Graph* graph = nullptr;
  core::ConvergenceCriteria convergence;
  core::EvalConfig eval;
  /// Closed-form round timing used by SyncFabric's sim_seconds stamp.
  TimingModel timing;
  /// Per-node per-round compute cost fed to `timing` (FLOPs).
  double round_compute_flops = 0.0;
  /// Optional fault process. Borrowed, not owned — must outlive the
  /// fabric. The fabric materializes rounds (ensure_round) serially and
  /// applies the schedule: down nodes skip their phases (sync) or go
  /// dormant (async), frames on down links / to down nodes are
  /// dropped, corrupted frames are charged but not delivered, and
  /// confirmed churn is surfaced through RoundHooks::on_churn.
  net::FaultInjector* faults = nullptr;
  /// Recovery knobs used when `faults` is set.
  FaultRecoveryConfig recovery;
  /// Round-aligned checkpointing (runtime::RunCheckpoint). Requires the
  /// scheme to provide RoundHooks::save_state/load_state. Sync and
  /// gossip fabrics only — the async fabric has no round barrier to
  /// align a checkpoint on.
  CheckpointConfig checkpoint;
};

/// Executes RoundHooks until convergence (or max_iterations). The
/// fabric owns everything execution-side: the clock, the message
/// transport, byte/cost accounting, the convergence detector, and the
/// per-iteration stats series. The returned TrainResult has every field
/// populated except the scheme-specific final_* summary, which the
/// caller fills after run() returns.
template <typename Payload>
class RoundFabric {
 public:
  virtual ~RoundFabric() = default;

  virtual core::TrainResult run(RoundHooks<Payload>& hooks) = 0;

  /// The pool the parallel phases (and callers' own folds) run on.
  virtual common::ThreadPool& pool() noexcept = 0;

  /// Fault-layer failure detector: does `observer` currently suspect
  /// `neighbor` of being down? Schemes use it to stop waiting on a
  /// silent peer (SNAP's paced ready gate). Sync fabrics answer from
  /// the injector's confirmed state; the async fabric also counts a
  /// neighbor silent past the configured window. Always false without
  /// a FaultInjector.
  virtual bool suspected(topology::NodeId /*observer*/,
                         topology::NodeId /*neighbor*/) const {
    return false;
  }
};

}  // namespace snap::runtime

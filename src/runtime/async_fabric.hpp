// Event-driven asynchronous round execution on net::EventQueue.
//
// The paper frames exchange as timer-driven ("define a timer to
// exchange the parameters ... based on network characteristics",
// §IV-D); AsyncFabric is that execution model. Each node free-runs its
// own round state machine:
//
//   compute finishes at t  →  local_update + collect fire,
//   every envelope is serialized through the sender's NIC, crosses the
//   link (per-hop latency), queues behind the receiver's NIC (incast is
//   emergent, not closed-form), and its mix fires on arrival;
//   the node then starts its next round — immediately if its gates
//   allow, otherwise it parks until another event unblocks it.
//
// Nodes therefore mix with whatever neighbor parameters are freshest:
// a frame from a slow sender lands while the receiver is rounds ahead,
// and that gap — receiver's completed rounds minus the sender's round
// at transmission — is the per-edge staleness this fabric tracks. An
// SSP-style bound (AsyncTimingConfig::max_staleness_rounds) optionally
// parks nodes that run too far ahead of a graph neighbor.
//
// Measurement keeps the round as its unit so results stay comparable
// with SyncFabric: when every node has completed round k (and the
// scheme's eval_ready gate agrees), the fabric evaluates, stamps
// sim_seconds with the event clock, and feeds the convergence detector.
//
// Determinism: the event loop is single-threaded, EventQueue breaks
// ties by scheduling order, and all randomness (compute jitter) comes
// from per-node forked Rng streams — identical configs replay
// identical event sequences bit for bit. With homogeneous compute
// times, zero jitter, and equal link parameters, every round-r compute
// fires before any round-r delivery, in ascending node order — the
// same per-round interleaving as SyncFabric, which is why the
// homogeneous async run reproduces the sync loss trajectory.
//
// Deliberate approximations (documented, asserted nowhere): the serial
// begin_round(r) hook fires when the *first* node enters round r (link
// failure draws and minibatch sequences advance on that global round
// counter), and SNAP's synchronized EXTRA restart — a shared-clock
// concept — runs from end_round at the eval barrier, so under skew a
// fast node restarts a round or two into its future. Both collapse to
// the sync semantics when compute times are homogeneous.
//
// Fault layer (FabricConfig::faults): the injector's schedule is
// round-indexed, so both fabrics replay the same fault timeline. A
// node whose next round is down goes *dormant* — it stops computing,
// drops out of the eval barrier, and is skipped by the SSP gate; it
// wakes (fast-forwarded to the frontier) when its schedule says up.
// Crash *confirmation* is time-based, matching a real failure
// detector: when a dormant node has been silent for the recovery
// config's suspect window, on_churn fires; the restart side fires when
// it wakes. suspected() additionally flags any neighbor silent past
// the window, which is what lets round-aligned pacing move on instead
// of parking forever. Frames lost to a down link — and frames
// corrupted in flight, which are charged but never delivered — are
// retransmitted with bounded exponential backoff. A low-frequency
// probe timer keeps the event queue alive while nodes are parked or
// dormant (sim time must advance for time-based gates to open) and
// gives up after a long no-progress streak so a fully-crashed system
// terminates.
//
// Elastic membership rides the same schedule: an absent node (latent
// joiner, graceful leaver) is dormant like a crashed one, but its
// transitions are *coordinated* — joins and leaves are announced via
// on_churn when their round begins (maybe_begin), with no suspicion
// window and no restart delta on wake. Both fabrics therefore surface
// the identical membership timeline at the identical rounds.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/training.hpp"
#include "net/cost_model.hpp"
#include "net/event_queue.hpp"
#include "net/transport.hpp"
#include "runtime/fabric.hpp"

namespace snap::runtime {

template <typename Payload>
class AsyncFabric final : public RoundFabric<Payload> {
 public:
  /// Delivery here is native to the event queue — a frame's arrival
  /// *time* is the model — so the round-structured Transport seam
  /// cannot carry it. The parameter exists so make_fabric has one
  /// signature across fabrics; only the sim kind (or none) is accepted,
  /// and socket-backed runs must use the sync/gossip fabrics.
  AsyncFabric(const FabricConfig& config, const AsyncTimingConfig& timing,
              std::unique_ptr<net::Transport<Payload>> transport = nullptr)
      : config_(config), timing_(timing), pool_(config.threads) {
    SNAP_REQUIRE_MSG(
        transport == nullptr ||
            transport->kind() == net::TransportKind::kSim,
        "the async fabric delivers on the event queue; socket transports "
        "are not supported (use --fabric=sync or --fabric=gossip)");
    SNAP_REQUIRE(timing_.compute_s > 0.0);
    SNAP_REQUIRE(timing_.nic_bandwidth_bytes_per_s > 0.0);
    SNAP_REQUIRE(timing_.link_latency_s >= 0.0);
    SNAP_REQUIRE(timing_.compute_jitter >= 0.0 &&
                 timing_.compute_jitter < 1.0);
    if (config_.graph != nullptr) {
      // Tolerant routing: latent membership joiners may be isolated
      // until they join (see SyncFabric); joins refresh the table.
      cost_.emplace(net::HopMatrix(*config_.graph,
                                   /*require_connected=*/false));
    }
    for (const LinkOverride& link : timing_.link_overrides) {
      overrides_[link_key(link.u, link.v)] = link;
    }
  }

  common::ThreadPool& pool() noexcept override { return pool_; }

  core::TrainResult run(RoundHooks<Payload>& hooks) override {
    SNAP_REQUIRE_MSG(hooks.evaluate != nullptr,
                     "run() requires an evaluate hook");
    const std::size_t n = hooks.node_count;
    SNAP_REQUIRE(n > 0);
    if (!timing_.node_compute_s.empty()) {
      SNAP_REQUIRE_MSG(timing_.node_compute_s.size() == n,
                       "node_compute_s must have one entry per node");
    }
    if (!timing_.node_nic_bandwidth.empty()) {
      SNAP_REQUIRE_MSG(timing_.node_nic_bandwidth.size() == n,
                       "node_nic_bandwidth must have one entry per node");
    }

    hooks_ = &hooks;
    detector_.emplace(config_.convergence);
    completed_.assign(n, 0);
    parked_.assign(n, false);
    out_busy_.assign(n, 0.0);
    in_busy_.assign(n, 0.0);
    edge_staleness_.assign(n, {});
    dormant_.assign(n, false);
    dormant_round_.assign(n, 0);
    confirmed_down_.assign(n, false);
    last_heard_.assign(n, {});
    jitter_.clear();
    jitter_.reserve(n);
    common::Rng root(timing_.seed);
    for (std::size_t i = 0; i < n; ++i) {
      jitter_.push_back(root.fork(0x4A177E5ULL + i));
    }
    frames_dropped_ = 0;
    frames_corrupted_ = 0;
    frames_retried_ = 0;
    state_sync_bytes_ = 0;
    progress_marker_ = 0;
    idle_probes_ = 0;
    probe_scheduled_ = false;
    double slowest_compute = timing_.compute_s;
    for (const double c : timing_.node_compute_s) {
      slowest_compute = std::max(slowest_compute, c);
    }
    suspect_window_ =
        config_.recovery.suspect_after_s > 0.0
            ? config_.recovery.suspect_after_s
            : 25.0 * (slowest_compute * (1.0 + timing_.compute_jitter) +
                      timing_.link_latency_s);

    // Every node starts computing round 1 at t = 0 — unless its round 1
    // is already scheduled down, in which case it starts dormant.
    for (topology::NodeId i = 0; i < n; ++i) {
      advance(i);
    }
    while (!stopping_ && queue_.run_next()) {
    }

    core::TrainResult result = std::move(result_);
    result.converged = detector_->converged();
    result.converged_after = result.converged ? detector_->converged_after()
                                              : evaluated_rounds_;
    if (cost_) {
      result.total_bytes = cost_->total_bytes();
      result.total_cost = cost_->total_cost();
    }
    result.total_sim_seconds = result.iterations.empty()
                                   ? queue_.now()
                                   : result.iterations.back().sim_seconds;
    hooks_ = nullptr;
    return result;
  }

  /// Last observed staleness (receiver rounds ahead of sender) per
  /// directed edge to → from, for tests and diagnostics.
  std::size_t edge_staleness(topology::NodeId to,
                             topology::NodeId from) const {
    SNAP_REQUIRE(to < edge_staleness_.size());
    const auto& row = edge_staleness_[to];
    const auto it = row.find(from);
    return it == row.end() ? 0 : it->second;
  }

  /// A neighbor is suspected when its crash is confirmed, or when the
  /// observer has not heard a frame from it for the suspect window —
  /// the failure-detector view a real node would have.
  bool suspected(topology::NodeId observer,
                 topology::NodeId neighbor) const override {
    if (config_.faults == nullptr) return false;
    if (neighbor < confirmed_down_.size() && confirmed_down_[neighbor]) {
      return true;
    }
    double heard = 0.0;
    if (observer < last_heard_.size()) {
      const auto it = last_heard_[observer].find(neighbor);
      if (it != last_heard_[observer].end()) heard = it->second;
    }
    return queue_.now() - heard > suspect_window_;
  }

 private:
  class WireSink final : public MessageSink<Payload> {
   public:
    explicit WireSink(AsyncFabric* fabric) : fabric_(fabric) {}
    void send(topology::NodeId from, topology::NodeId to, Payload payload,
              std::size_t wire_bytes, bool state_sync) override {
      fabric_->send_envelope(
          from,
          Envelope<Payload>{to, std::move(payload), wire_bytes, state_sync},
          fabric_->completed_[from]);
    }

   private:
    AsyncFabric* fabric_;
  };

  static std::uint64_t link_key(topology::NodeId u,
                                topology::NodeId v) noexcept {
    const auto lo = static_cast<std::uint64_t>(std::min(u, v));
    const auto hi = static_cast<std::uint64_t>(std::max(u, v));
    return (hi << 32) | lo;
  }

  double compute_seconds(topology::NodeId node) {
    double base = timing_.node_compute_s.empty()
                      ? timing_.compute_s
                      : timing_.node_compute_s[node];
    SNAP_REQUIRE(base > 0.0);
    if (timing_.compute_jitter > 0.0) {
      const double u = jitter_[node].uniform(-timing_.compute_jitter,
                                             timing_.compute_jitter);
      base *= 1.0 + u;
    }
    return base;
  }

  double nic_bandwidth(topology::NodeId node) const {
    const double bw = timing_.node_nic_bandwidth.empty()
                          ? timing_.nic_bandwidth_bytes_per_s
                          : timing_.node_nic_bandwidth[node];
    SNAP_REQUIRE(bw > 0.0);
    return bw;
  }

  /// Calls the serial round preamble for every round up to `round`, in
  /// order, exactly once each — driven by the first node to finish that
  /// round's compute. Coordinated membership transitions (joins and
  /// graceful leaves) are announced here, at the round the injector
  /// materialized them: unlike a crash they carry no detection
  /// ambiguity, so both fabrics surface them at the identical round.
  void maybe_begin(std::size_t round) {
    while (begun_ < round) {
      ++begun_;
      if (config_.faults != nullptr) {
        config_.faults->ensure_round(begun_);
        const net::ChurnDelta& d = config_.faults->churn_delta(begun_);
        if (!d.joined.empty() || !d.left.empty()) {
          if (cost_) {
            // Joins may have grown the topology: refresh routes before
            // any handoff frame is sent.
            cost_->set_hop_matrix(
                net::HopMatrix(config_.faults->current_graph(),
                               /*require_connected=*/false));
          }
          if (hooks_->on_churn) {
            net::ChurnDelta membership;
            membership.joined = d.joined;
            membership.left = d.left;
            WireSink sink(this);
            hooks_->on_churn(begun_, membership, sink);
          }
          ++progress_marker_;
        }
        // Component-structure changes are round-indexed like the rest of
        // the injector's schedule, so both fabrics surface the identical
        // partition timeline at the identical rounds. Fired after the
        // membership announcement, mirroring the sync preamble order.
        const net::PartitionDelta& pd =
            config_.faults->partition_delta(begun_);
        if (hooks_->on_partition && !pd.empty()) {
          WireSink sink(this);
          hooks_->on_partition(begun_, pd, sink);
          ++progress_marker_;
        }
      }
      if (hooks_->begin_round) hooks_->begin_round(begun_);
    }
  }

  bool node_ready(topology::NodeId node, std::size_t round) const {
    if (hooks_->ready && !hooks_->ready(node, round)) return false;
    // Joins grow the topology mid-run, so the gate walks the
    // injector's dynamic graph when faults are attached.
    const topology::Graph* gate_graph =
        config_.faults != nullptr ? &config_.faults->current_graph()
                                  : config_.graph;
    if (timing_.max_staleness_rounds > 0 && gate_graph != nullptr) {
      // SSP gate: don't start a round that would leave a neighbor more
      // than max_staleness_rounds behind. Dormant (crashed) neighbors
      // are exempt — waiting on a dead node would park forever.
      for (const topology::NodeId j : gate_graph->neighbors(node)) {
        if (dormant_[j] || confirmed_down_[j]) continue;
        if (completed_[j] + timing_.max_staleness_rounds + 1 < round) {
          return false;
        }
      }
    }
    return true;
  }

  void schedule_compute(topology::NodeId node, std::size_t round) {
    ++progress_marker_;
    queue_.schedule_in(compute_seconds(node), [this, node, round] {
      on_compute_done(node, round);
    });
  }

  void on_compute_done(topology::NodeId node, std::size_t round) {
    maybe_begin(round);
    if (hooks_->local_update) hooks_->local_update(node);
    std::vector<Envelope<Payload>> envelopes;
    if (hooks_->collect) envelopes = hooks_->collect(node);
    completed_[node] = round;
    for (auto& envelope : envelopes) {
      send_envelope(node, std::move(envelope), round);
    }
    check_eval();
    advance(node);
    unpark();
  }

  /// Two-stage NIC serialization: the frame occupies the sender's
  /// uplink, crosses the (hop-scaled) latency, then queues behind the
  /// receiver's downlink. A busy receiver NIC is exactly the incast
  /// effect the paper's §I argues about — here it emerges from the
  /// event timeline instead of a closed form.
  void send_envelope(topology::NodeId from, Envelope<Payload> envelope,
                     std::size_t sender_round, std::size_t attempt = 0) {
    const topology::NodeId to = envelope.to;
    SNAP_REQUIRE(to < completed_.size());
    SNAP_REQUIRE_MSG(to != from, "node " << from << " messaging itself");
    bool corrupted = false;
    if (config_.faults != nullptr && !envelope.state_sync) {
      // STATE_SYNC handoffs are exempt: they ride the coordinated join
      // handshake (the joiner is a member the instant the join is
      // announced, but this round's link state was materialized before
      // that), and the handshake is reliable — the frame always crosses
      // the wire and is always charged.
      const std::size_t fault_round = std::max<std::size_t>(sender_round, 1);
      config_.faults->ensure_round(fault_round);
      if (config_.faults->link_down(fault_round, from, to)) {
        // Lost before the wire (carrier down / endpoint dead): nothing
        // is charged; retry with backoff against the link's later state.
        maybe_retry(from, std::move(envelope), sender_round, attempt);
        return;
      }
      corrupted = envelope.wire_bytes > 0 &&
                  config_.faults->frame_corrupted(fault_round, from, to,
                                                  attempt);
    }
    double arrival = queue_.now();
    if (envelope.wire_bytes > 0) {
      if (cost_) cost_->record_flow(from, to, envelope.wire_bytes);
      // Handoff accounting follows the charge: every wire crossing
      // (including a retransmission) costs its bytes.
      if (envelope.state_sync) state_sync_bytes_ += envelope.wire_bytes;
      const std::size_t hops =
          cost_ ? cost_->hop_matrix().hops(from, to) : 1;
      double latency =
          timing_.link_latency_s * static_cast<double>(hops);
      double bw_out = nic_bandwidth(from);
      double bw_in = nic_bandwidth(to);
      if (const auto it = overrides_.find(link_key(from, to));
          it != overrides_.end()) {
        if (it->second.latency_s > 0.0) latency = it->second.latency_s;
        if (it->second.bandwidth_bytes_per_s > 0.0) {
          bw_out = it->second.bandwidth_bytes_per_s;
          bw_in = it->second.bandwidth_bytes_per_s;
        }
      }
      const double bytes = static_cast<double>(envelope.wire_bytes);
      const double out_start = std::max(queue_.now(), out_busy_[from]);
      const double out_done = out_start + bytes / bw_out;
      out_busy_[from] = out_done;
      const double at_receiver = out_done + latency;
      const double in_start = std::max(at_receiver, in_busy_[to]);
      arrival = in_start + bytes / bw_in;
      in_busy_[to] = arrival;
    }
    if (corrupted) {
      // The frame crossed the wire (charged, NIC time consumed) but
      // fails decode at the receiver; the sender retransmits after a
      // backoff, re-rolling the corruption draw per attempt.
      ++frames_corrupted_;
      auto resend = std::make_shared<Envelope<Payload>>(std::move(envelope));
      queue_.schedule_at(arrival, [this, from, resend, sender_round,
                                   attempt] {
        maybe_retry(from, std::move(*resend), sender_round, attempt);
        check_eval();
        unpark();
      });
      return;
    }
    // EventQueue actions must be copyable; the payload rides a
    // shared_ptr so move-only payloads work too.
    auto payload = std::make_shared<Payload>(std::move(envelope.payload));
    queue_.schedule_at(arrival, [this, from, to, sender_round, payload] {
      on_delivery(from, to, sender_round, std::move(*payload));
    });
  }

  /// Bounded retransmission with exponential backoff. The retry re-rolls
  /// link state against the sender's round at retransmission time, so a
  /// recovered link carries the frame and a persistent outage (or a
  /// dead endpoint) exhausts the budget and drops it.
  void maybe_retry(topology::NodeId from, Envelope<Payload> envelope,
                   std::size_t sender_round, std::size_t attempt) {
    if (config_.faults == nullptr ||
        attempt >= config_.recovery.max_retries) {
      ++frames_dropped_;
      return;
    }
    // A confirmed partition is not a transient loss: while the injector
    // places sender and receiver in different components, every
    // retransmission would hit the same sustained cut. Park the frame
    // (drop without a retry chain) — the heal-time boundary sync, not a
    // retry, is what reconciles the two sides.
    const std::size_t fault_round = std::max<std::size_t>(sender_round, 1);
    if (!config_.faults->same_component(fault_round, from, envelope.to)) {
      ++frames_dropped_;
      return;
    }
    ++frames_retried_;
    const double backoff = bounded_backoff(config_.recovery, attempt);
    auto resend = std::make_shared<Envelope<Payload>>(std::move(envelope));
    queue_.schedule_in(std::max(backoff, 1e-9),
                       [this, from, resend, sender_round, attempt] {
                         const std::size_t r =
                             std::max(sender_round, completed_[from]);
                         send_envelope(from, std::move(*resend), r,
                                       attempt + 1);
                       });
  }

  void on_delivery(topology::NodeId from, topology::NodeId to,
                   std::size_t sender_round, Payload payload) {
    last_heard_[to][from] = queue_.now();
    const std::size_t staleness = completed_[to] > sender_round
                                      ? completed_[to] - sender_round
                                      : 0;
    edge_staleness_[to][from] = staleness;
    staleness_sum_ += static_cast<double>(staleness);
    ++staleness_count_;
    staleness_max_ = std::max(staleness_max_,
                              static_cast<std::uint64_t>(staleness));
    if (hooks_->mix) {
      const Delivery<Payload> delivery{from, std::move(payload)};
      WireSink sink(this);
      hooks_->mix(to, std::span<const Delivery<Payload>>(&delivery, 1),
                  sink);
    }
    check_eval();
    unpark();
  }

  /// Starts `node`'s next round, parks it until a gate opens, or sends
  /// it dormant when the fault schedule holds it down.
  void advance(topology::NodeId node) {
    if (stopping_) return;
    const std::size_t next = completed_[node] + 1;
    if (next > config_.convergence.max_iterations) return;
    if (config_.faults != nullptr) {
      config_.faults->ensure_round(next);
      if (config_.faults->node_down(next, node)) {
        make_dormant(node, next);
        return;
      }
    }
    if (node_ready(node, next)) {
      schedule_compute(node, next);
    } else {
      parked_[node] = true;
      ensure_probe();
    }
  }

  /// Re-checks every parked node after any event — gates only open on
  /// events, so this keeps the simulation live without busy-waiting.
  /// With faults attached it also wakes dormant nodes whose schedule
  /// has turned up again.
  void unpark() {
    if (stopping_) return;
    try_wake_dormant();
    for (topology::NodeId i = 0; i < parked_.size(); ++i) {
      if (!parked_[i]) continue;
      const std::size_t next = completed_[i] + 1;
      if (next > config_.convergence.max_iterations) {
        parked_[i] = false;
        continue;
      }
      if (config_.faults != nullptr) {
        config_.faults->ensure_round(next);
        if (config_.faults->node_down(next, i)) {
          parked_[i] = false;
          make_dormant(i, next);
          continue;
        }
      }
      if (node_ready(i, next)) {
        parked_[i] = false;
        schedule_compute(i, next);
      }
    }
  }

  /// The node's next round is down: it stops computing and leaves the
  /// eval barrier. If it is still down when the silence window elapses,
  /// the crash is confirmed to the scheme.
  void make_dormant(topology::NodeId node, std::size_t round) {
    dormant_[node] = true;
    dormant_round_[node] = round;
    queue_.schedule_in(suspect_window_,
                       [this, node] { confirm_crash(node); });
    ensure_probe();
  }

  void confirm_crash(topology::NodeId node) {
    if (stopping_ || !dormant_[node] || confirmed_down_[node]) return;
    const std::size_t round = std::max<std::size_t>(begun_, 1);
    if (config_.faults != nullptr) {
      config_.faults->ensure_round(round);
      // Non-members are announced (joined/left at maybe_begin), never
      // suspected: absence is not a crash to confirm.
      if (!config_.faults->member(round, node)) return;
    }
    confirmed_down_[node] = true;
    ++progress_marker_;
    if (hooks_->on_churn) {
      WireSink sink(this);
      net::ChurnDelta delta;
      delta.crashed.push_back(node);
      hooks_->on_churn(round, delta, sink);
    }
    check_eval();
    unpark();
  }

  /// Wakes dormant nodes whose fault schedule says up at the round they
  /// would resume (their own stalled round, or the global frontier —
  /// a restarted node fast-forwards instead of replaying its outage).
  void try_wake_dormant() {
    if (config_.faults == nullptr || stopping_) return;
    const std::size_t max_iter = config_.convergence.max_iterations;
    for (topology::NodeId i = 0; i < dormant_.size(); ++i) {
      if (!dormant_[i]) continue;
      std::size_t resume = std::max(begun_, dormant_round_[i]);
      resume = std::min(std::max<std::size_t>(resume, 1), max_iter);
      config_.faults->ensure_round(resume);
      if (config_.faults->node_down(resume, i)) continue;
      dormant_[i] = false;
      completed_[i] = std::max(completed_[i], resume - 1);
      ++progress_marker_;
      if (confirmed_down_[i]) {
        confirmed_down_[i] = false;
        if (hooks_->on_churn) {
          WireSink sink(this);
          net::ChurnDelta delta;
          delta.restarted.push_back(i);
          hooks_->on_churn(resume, delta, sink);
        }
      }
      advance(i);
    }
  }

  /// Keeps the queue alive while nodes are parked or dormant: time-based
  /// gates (suspicion, wakes) only open when sim time advances. Gives up
  /// after a long streak of probes with no progress, so a fully-crashed
  /// system drains and run() returns.
  void ensure_probe() {
    if (config_.faults == nullptr || probe_scheduled_ || stopping_) return;
    bool pending = false;
    for (std::size_t i = 0; i < dormant_.size() && !pending; ++i) {
      pending = dormant_[i] || parked_[i];
    }
    if (!pending) return;
    probe_scheduled_ = true;
    queue_.schedule_in(std::max(suspect_window_ / 8.0, 1e-6), [this] {
      probe_scheduled_ = false;
      on_probe();
    });
  }

  void on_probe() {
    if (stopping_) return;
    const std::uint64_t before = progress_marker_;
    unpark();
    if (progress_marker_ != before) {
      idle_probes_ = 0;
    } else if (++idle_probes_ > kMaxIdleProbes) {
      return;
    }
    ensure_probe();
  }

  /// Round k is measured once every node has completed it (and the
  /// scheme agrees); rounds are evaluated in order, so a fast burst of
  /// completions produces one stats row per round, just like sync.
  void check_eval() {
    while (!stopping_) {
      const std::size_t k = evaluated_rounds_ + 1;
      if (k > config_.convergence.max_iterations) break;
      // The barrier spans the *alive* nodes; a dormant (crashed) node
      // must not hold measurement hostage. All-dormant systems simply
      // stop measuring.
      std::size_t slowest = 0;
      bool any_alive = false;
      for (std::size_t i = 0; i < completed_.size(); ++i) {
        if (dormant_[i]) continue;
        slowest = any_alive ? std::min(slowest, completed_[i])
                            : completed_[i];
        any_alive = true;
      }
      if (!any_alive || slowest < k) break;
      if (hooks_->eval_ready && !hooks_->eval_ready(k)) break;
      evaluated_rounds_ = k;

      const bool measure_accuracy =
          (k % std::max<std::size_t>(config_.eval.every, 1)) == 0 ||
          k == config_.convergence.max_iterations;
      const RoundEval eval = hooks_->evaluate(k, measure_accuracy);

      core::IterationStats stats;
      stats.train_loss = eval.train_loss;
      stats.consensus_residual = eval.consensus_residual;
      if (eval.evaluated) {
        stats.test_accuracy = eval.test_accuracy;
        stats.evaluated = true;
      }
      if (cost_) {
        cost_->end_iteration();
        stats.bytes = cost_->bytes_per_iteration().back();
        stats.cost = cost_->cost_per_iteration().back();
        stats.max_node_inbound_bytes =
            cost_->max_inbound_per_iteration().back();
        stats.max_node_outbound_bytes =
            cost_->max_outbound_per_iteration().back();
      }
      stats.sim_seconds = queue_.now();
      if (staleness_count_ > 0) {
        stats.mean_frame_staleness =
            staleness_sum_ / static_cast<double>(staleness_count_);
      }
      stats.max_frame_staleness = staleness_max_;
      staleness_sum_ = 0.0;
      staleness_count_ = 0;
      staleness_max_ = 0;
      if (config_.faults != nullptr) {
        stats.links_down = config_.faults->down_link_count(k);
        stats.nodes_down = config_.faults->down_node_count(k);
        stats.frames_dropped = frames_dropped_;
        stats.frames_corrupted = frames_corrupted_;
        stats.frames_retried = frames_retried_;
        stats.alive_nodes = config_.faults->alive_member_count(k);
        stats.nodes_joined = config_.faults->churn_delta(k).joined.size();
        stats.state_sync_bytes = state_sync_bytes_;
        stats.components = config_.faults->component_count(k);
        stats.largest_component_frac =
            config_.faults->largest_component_fraction(k);
        stats.partition_epoch = config_.faults->partition_epoch(k);
        frames_dropped_ = 0;
        frames_corrupted_ = 0;
        frames_retried_ = 0;
        state_sync_bytes_ = 0;
      } else {
        stats.alive_nodes = completed_.size();
      }
      if (hooks_->annotate_stats) hooks_->annotate_stats(stats);
      result_.iterations.push_back(stats);

      detector_->observe(eval.train_loss, eval.consensus_residual,
                         stats.evaluated ? stats.test_accuracy : -1.0);
      if (hooks_->end_round) hooks_->end_round(k);
      if (detector_->converged() ||
          k == config_.convergence.max_iterations) {
        stopping_ = true;
      }
    }
  }

  FabricConfig config_;
  AsyncTimingConfig timing_;
  common::ThreadPool pool_;
  std::optional<net::CostTracker> cost_;
  std::unordered_map<std::uint64_t, LinkOverride> overrides_;
  net::EventQueue queue_;
  RoundHooks<Payload>* hooks_ = nullptr;
  std::optional<core::ConvergenceDetector> detector_;
  core::TrainResult result_;

  static constexpr std::size_t kMaxIdleProbes = 256;

  std::vector<std::size_t> completed_;  // rounds finished per node
  std::vector<bool> parked_;
  std::vector<bool> dormant_;           // crashed per the fault schedule
  std::vector<std::size_t> dormant_round_;  // the round that stalled
  std::vector<bool> confirmed_down_;    // crash surfaced via on_churn
  // last_heard_[to][from]: when `to` last received a frame from `from`
  // (the silence clock behind suspected()).
  std::vector<std::unordered_map<topology::NodeId, double>> last_heard_;
  double suspect_window_ = 0.0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_retried_ = 0;
  std::uint64_t state_sync_bytes_ = 0;
  std::uint64_t progress_marker_ = 0;
  std::size_t idle_probes_ = 0;
  bool probe_scheduled_ = false;
  std::vector<double> out_busy_;  // sender-NIC busy-until, per node
  std::vector<double> in_busy_;   // receiver-NIC busy-until, per node
  std::vector<common::Rng> jitter_;
  std::vector<std::unordered_map<topology::NodeId, std::size_t>>
      edge_staleness_;
  double staleness_sum_ = 0.0;
  std::uint64_t staleness_count_ = 0;
  std::uint64_t staleness_max_ = 0;
  std::size_t begun_ = 0;
  std::size_t evaluated_rounds_ = 0;
  bool stopping_ = false;
};

}  // namespace snap::runtime

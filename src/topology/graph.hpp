// Undirected edge-server topology.
//
// In SNAP's system model (paper §II-B) each vertex is an edge server and
// each edge is a one-hop connection; the neighbor set B_i of server i is
// exactly its adjacency. The graph also provides BFS hop counts, which
// the communication-cost model uses to charge multi-hop flows
// (parameter-server traffic crosses h physical hops and costs h× the
// flow size).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace snap::topology {

using NodeId = std::size_t;

/// Simple undirected graph with adjacency lists and an edge list.
class Graph {
 public:
  Graph() = default;

  /// Graph with n isolated vertices.
  explicit Graph(std::size_t n) : adjacency_(n) {}

  std::size_t node_count() const noexcept { return adjacency_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Adds the undirected edge {u, v}. Self-loops and duplicate edges are
  /// rejected (checked precondition).
  void add_edge(NodeId u, NodeId v);

  /// True when {u, v} is an edge.
  bool has_edge(NodeId u, NodeId v) const;

  /// Neighbor set B_u, sorted ascending.
  const std::vector<NodeId>& neighbors(NodeId u) const;

  /// Node degree |B_u|.
  std::size_t degree(NodeId u) const;

  /// Mean node degree, 2|E|/|V| (0 for the empty graph).
  double average_degree() const noexcept;

  /// All edges as (u, v) pairs with u < v.
  const std::vector<std::pair<NodeId, NodeId>>& edges() const noexcept {
    return edges_;
  }

  /// True when every vertex can reach every other vertex.
  bool is_connected() const;

  /// BFS hop counts from `source`; unreachable nodes are nullopt.
  std::vector<std::optional<std::size_t>> hops_from(NodeId source) const;

  /// All-pairs hop counts via per-source BFS. hops[u][v] is nullopt when
  /// v is unreachable from u.
  std::vector<std::vector<std::optional<std::size_t>>> all_pairs_hops() const;

  /// Largest finite shortest-path distance (requires connected graph).
  std::size_t diameter() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace snap::topology

// Undirected edge-server topology.
//
// In SNAP's system model (paper §II-B) each vertex is an edge server and
// each edge is a one-hop connection; the neighbor set B_i of server i is
// exactly its adjacency. The graph also provides BFS hop counts, which
// the communication-cost model uses to charge multi-hop flows
// (parameter-server traffic crosses h physical hops and costs h× the
// flow size).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace snap::topology {

using NodeId = std::size_t;

/// Simple undirected graph with adjacency lists and an edge list.
class Graph {
 public:
  Graph() = default;

  /// Graph with n isolated vertices.
  explicit Graph(std::size_t n) : adjacency_(n) {}

  std::size_t node_count() const noexcept { return adjacency_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Adds the undirected edge {u, v}. Self-loops and duplicate edges are
  /// rejected (checked precondition).
  void add_edge(NodeId u, NodeId v);

  /// True when {u, v} is an edge.
  bool has_edge(NodeId u, NodeId v) const;

  /// Neighbor set B_u, sorted ascending.
  const std::vector<NodeId>& neighbors(NodeId u) const;

  /// Node degree |B_u|.
  std::size_t degree(NodeId u) const;

  /// Mean node degree, 2|E|/|V| (0 for the empty graph).
  double average_degree() const noexcept;

  /// All edges as (u, v) pairs with u < v.
  const std::vector<std::pair<NodeId, NodeId>>& edges() const noexcept {
    return edges_;
  }

  /// True when every vertex can reach every other vertex.
  bool is_connected() const;

  /// BFS hop counts from `source`; unreachable nodes are nullopt.
  std::vector<std::optional<std::size_t>> hops_from(NodeId source) const;

  /// All-pairs hop counts via per-source BFS. hops[u][v] is nullopt when
  /// v is unreachable from u.
  std::vector<std::vector<std::optional<std::size_t>>> all_pairs_hops() const;

  /// Largest finite shortest-path distance (requires connected graph).
  std::size_t diameter() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

/// The connected components of an (optionally masked) graph. Labels are
/// assigned in ascending order of each component's lowest member id, so
/// the labeling is a pure function of the graph + masks: component 0
/// contains the lowest included node, component 1 the lowest included
/// node not in component 0, and so on. Excluded nodes carry kExcluded.
struct ComponentMap {
  /// Label for nodes outside the inclusion mask.
  static constexpr std::size_t kExcluded = static_cast<std::size_t>(-1);

  std::vector<std::size_t> label;  ///< per-node component label
  std::size_t count = 0;           ///< number of components
  std::size_t largest_size = 0;    ///< size of the largest component

  /// Fraction of *included* nodes in the largest component (1.0 when
  /// nothing is included — an empty membership is trivially whole).
  double largest_fraction() const noexcept {
    std::size_t included = 0;
    for (const std::size_t l : label) {
      if (l != kExcluded) ++included;
    }
    if (included == 0) return 1.0;
    return static_cast<double>(largest_size) /
           static_cast<double>(included);
  }

  /// True when `u` and `v` are both included and in the same component.
  bool same_component(NodeId u, NodeId v) const noexcept {
    return u < label.size() && v < label.size() &&
           label[u] != kExcluded && label[u] == label[v];
  }
};

/// Components of the full graph (every node included, every edge up).
ComponentMap connected_components(const Graph& graph);

/// Components of the *effective* graph: only nodes with include[u] != 0
/// participate, and an edge {u, v} is traversable only when both
/// endpoints are included and edge_down (if provided) returns false for
/// it. Deterministic: BFS from the lowest unvisited included node, in
/// ascending id order. edge_down is called with u < v.
ComponentMap connected_components(
    const Graph& graph, const std::vector<std::uint8_t>& include,
    const std::function<bool(NodeId, NodeId)>& edge_down = nullptr);

}  // namespace snap::topology

// Edge-list text I/O for topologies, so custom networks can be fed to
// the CLI and examples.
//
// Format: first non-comment line is the node count; each following
// non-comment line is "u v" (one undirected edge). '#' starts a comment;
// blank lines are ignored.
//
//   # five nodes in a ring
//   5
//   0 1
//   1 2
//   2 3
//   3 4
//   4 0
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "topology/graph.hpp"

namespace snap::topology {

/// Serializes a graph as an edge list.
void write_edge_list(std::ostream& os, const Graph& graph);

/// Parses an edge list. Returns nullopt (with a human-readable message
/// in *error when provided) on malformed input: missing node count,
/// out-of-range endpoints, self-loops, or duplicate edges.
std::optional<Graph> read_edge_list(std::istream& is,
                                    std::string* error = nullptr);

/// File convenience wrappers.
bool save_edge_list(const std::string& path, const Graph& graph);
std::optional<Graph> load_edge_list(const std::string& path,
                                    std::string* error = nullptr);

}  // namespace snap::topology

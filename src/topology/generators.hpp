// Topology generators for the evaluation scenarios.
//
// The paper's large-scale simulations (§V-B) use "randomly generate[d]
// networks with various topologies and average node degrees". We provide
// that generator (random connected graph with a target average degree)
// plus the standard reference shapes used by tests, examples, and the
// 3-server testbed reproduction.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "topology/graph.hpp"

namespace snap::topology {

/// Complete graph K_n (the 3-server testbed is K_3).
Graph make_complete(std::size_t n);

/// Cycle 0-1-...-n-1-0. Requires n >= 3.
Graph make_ring(std::size_t n);

/// Path 0-1-...-n-1. Requires n >= 2.
Graph make_line(std::size_t n);

/// Star with node 0 at the center. Requires n >= 2.
Graph make_star(std::size_t n);

/// rows×cols 4-connected grid.
Graph make_grid(std::size_t rows, std::size_t cols);

/// Random connected graph over n nodes whose average degree approaches
/// `average_degree` (clamped to [2(n-1)/n, n-1]).
///
/// Construction: a uniform random spanning tree (random-walk based)
/// guarantees connectivity, then extra edges are added uniformly at
/// random among the non-edges until the target edge count
/// round(n * average_degree / 2) is reached. This mirrors the paper's
/// random peer-to-peer topologies where each edge is a one-hop link.
Graph make_random_connected(std::size_t n, double average_degree,
                            common::Rng& rng);

/// Erdős–Rényi G(n, p) — not necessarily connected; used by property
/// tests to exercise robustness on arbitrary graphs.
Graph make_erdos_renyi(std::size_t n, double p, common::Rng& rng);

}  // namespace snap::topology

#include "topology/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace snap::topology {

Graph make_complete(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      g.add_edge(u, v);
    }
  }
  return g;
}

Graph make_ring(std::size_t n) {
  SNAP_REQUIRE_MSG(n >= 3, "ring requires at least 3 nodes");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    g.add_edge(u, (u + 1) % n);
  }
  return g;
}

Graph make_line(std::size_t n) {
  SNAP_REQUIRE_MSG(n >= 2, "line requires at least 2 nodes");
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    g.add_edge(u, u + 1);
  }
  return g;
}

Graph make_star(std::size_t n) {
  SNAP_REQUIRE_MSG(n >= 2, "star requires at least 2 nodes");
  Graph g(n);
  for (NodeId u = 1; u < n; ++u) {
    g.add_edge(0, u);
  }
  return g;
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  SNAP_REQUIRE(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_random_connected(std::size_t n, double average_degree,
                            common::Rng& rng) {
  SNAP_REQUIRE_MSG(n >= 2, "need at least 2 nodes");
  const std::size_t max_edges = n * (n - 1) / 2;
  const std::size_t min_edges = n - 1;  // spanning tree
  auto target_edges = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * average_degree / 2.0));
  target_edges = std::clamp(target_edges, min_edges, max_edges);

  Graph g(n);

  // Uniform spanning tree over K_n via Aldous–Broder random walk.
  std::vector<bool> visited(n, false);
  NodeId current = static_cast<NodeId>(rng.uniform_u64(n));
  visited[current] = true;
  std::size_t visited_count = 1;
  while (visited_count < n) {
    const NodeId next = static_cast<NodeId>(rng.uniform_u64(n));
    if (next == current) continue;
    if (!visited[next]) {
      g.add_edge(current, next);
      visited[next] = true;
      ++visited_count;
    }
    current = next;
  }

  // Densify: add uniformly random non-edges until the target edge count.
  while (g.edge_count() < target_edges) {
    const NodeId u = static_cast<NodeId>(rng.uniform_u64(n));
    const NodeId v = static_cast<NodeId>(rng.uniform_u64(n));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
  }

  SNAP_ENSURE(g.is_connected());
  return g;
}

Graph make_erdos_renyi(std::size_t n, double p, common::Rng& rng) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace snap::topology

#include "topology/io.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace snap::topology {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Strips comments/whitespace; returns empty for skippable lines.
std::string_view payload_of(std::string_view line) {
  const auto hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  return common::trim(line);
}

}  // namespace

void write_edge_list(std::ostream& os, const Graph& graph) {
  os << "# snap topology: " << graph.node_count() << " nodes, "
     << graph.edge_count() << " edges\n"
     << graph.node_count() << '\n';
  for (const auto& [u, v] : graph.edges()) {
    os << u << ' ' << v << '\n';
  }
}

std::optional<Graph> read_edge_list(std::istream& is, std::string* error) {
  std::string line;
  std::optional<Graph> graph;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string_view payload = payload_of(line);
    if (payload.empty()) continue;
    std::istringstream fields{std::string(payload)};
    if (!graph.has_value()) {
      std::size_t node_count = 0;
      if (!(fields >> node_count) || node_count == 0) {
        set_error(error, "line " + std::to_string(line_number) +
                             ": expected positive node count");
        return std::nullopt;
      }
      std::string extra;
      if (fields >> extra) {
        set_error(error, "line " + std::to_string(line_number) +
                             ": trailing tokens after node count");
        return std::nullopt;
      }
      graph.emplace(node_count);
      continue;
    }
    std::size_t u = 0;
    std::size_t v = 0;
    std::string extra;
    if (!(fields >> u >> v) || (fields >> extra)) {
      set_error(error, "line " + std::to_string(line_number) +
                           ": expected 'u v'");
      return std::nullopt;
    }
    if (u >= graph->node_count() || v >= graph->node_count() || u == v ||
        graph->has_edge(u, v)) {
      set_error(error, "line " + std::to_string(line_number) +
                           ": invalid edge (" + std::to_string(u) + "," +
                           std::to_string(v) + ")");
      return std::nullopt;
    }
    graph->add_edge(u, v);
  }
  if (!graph.has_value()) {
    set_error(error, "empty input: missing node count");
  }
  return graph;
}

bool save_edge_list(const std::string& path, const Graph& graph) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  write_edge_list(file, graph);
  return static_cast<bool>(file);
}

std::optional<Graph> load_edge_list(const std::string& path,
                                    std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return read_edge_list(file, error);
}

}  // namespace snap::topology

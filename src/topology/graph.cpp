#include "topology/graph.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"

namespace snap::topology {

void Graph::add_edge(NodeId u, NodeId v) {
  SNAP_REQUIRE_MSG(u < node_count() && v < node_count(),
                   "edge (" << u << "," << v << ") out of range for "
                            << node_count() << " nodes");
  SNAP_REQUIRE_MSG(u != v, "self-loop at node " << u);
  SNAP_REQUIRE_MSG(!has_edge(u, v),
                   "duplicate edge (" << u << "," << v << ")");
  // Keep adjacency sorted for deterministic iteration order.
  auto insert_sorted = [](std::vector<NodeId>& list, NodeId value) {
    list.insert(std::lower_bound(list.begin(), list.end(), value), value);
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  SNAP_REQUIRE(u < node_count() && v < node_count());
  const auto& list = adjacency_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

const std::vector<NodeId>& Graph::neighbors(NodeId u) const {
  SNAP_REQUIRE(u < node_count());
  return adjacency_[u];
}

std::size_t Graph::degree(NodeId u) const {
  SNAP_REQUIRE(u < node_count());
  return adjacency_[u].size();
}

double Graph::average_degree() const noexcept {
  if (node_count() == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) /
         static_cast<double>(node_count());
}

bool Graph::is_connected() const {
  if (node_count() == 0) return true;
  const auto hops = hops_from(0);
  return std::all_of(hops.begin(), hops.end(),
                     [](const auto& h) { return h.has_value(); });
}

std::vector<std::optional<std::size_t>> Graph::hops_from(
    NodeId source) const {
  SNAP_REQUIRE(source < node_count());
  std::vector<std::optional<std::size_t>> dist(node_count());
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : adjacency_[u]) {
      if (!dist[v].has_value()) {
        dist[v] = *dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::vector<std::optional<std::size_t>>> Graph::all_pairs_hops()
    const {
  std::vector<std::vector<std::optional<std::size_t>>> all;
  all.reserve(node_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    all.push_back(hops_from(u));
  }
  return all;
}

std::size_t Graph::diameter() const {
  SNAP_REQUIRE_MSG(is_connected(), "diameter of a disconnected graph");
  std::size_t best = 0;
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const auto& h : hops_from(u)) {
      best = std::max(best, h.value());
    }
  }
  return best;
}

ComponentMap connected_components(const Graph& graph) {
  return connected_components(
      graph, std::vector<std::uint8_t>(graph.node_count(), 1), nullptr);
}

ComponentMap connected_components(
    const Graph& graph, const std::vector<std::uint8_t>& include,
    const std::function<bool(NodeId, NodeId)>& edge_down) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(include.size() == n,
                   "inclusion mask covers " << include.size()
                                            << " nodes, graph has " << n);
  ComponentMap map;
  map.label.assign(n, ComponentMap::kExcluded);
  std::queue<NodeId> frontier;
  for (NodeId seed = 0; seed < n; ++seed) {
    if (include[seed] == 0 || map.label[seed] != ComponentMap::kExcluded) {
      continue;
    }
    const std::size_t component = map.count++;
    std::size_t size = 0;
    map.label[seed] = component;
    frontier.push(seed);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      ++size;
      for (const NodeId v : graph.neighbors(u)) {
        if (include[v] == 0 || map.label[v] != ComponentMap::kExcluded) {
          continue;
        }
        if (edge_down && edge_down(std::min(u, v), std::max(u, v))) {
          continue;
        }
        map.label[v] = component;
        frontier.push(v);
      }
    }
    map.largest_size = std::max(map.largest_size, size);
  }
  return map;
}

}  // namespace snap::topology

#include "consensus/gossip_mixing.hpp"

#include <algorithm>
#include <cstddef>

#include "common/check.hpp"

namespace snap::consensus {

linalg::Matrix activated_mixing_matrix(
    std::size_t node_count,
    std::span<const std::pair<topology::NodeId, topology::NodeId>> links,
    const std::vector<bool>& alive) {
  SNAP_REQUIRE(node_count > 0);
  SNAP_REQUIRE_MSG(alive.empty() || alive.size() == node_count,
                   "alive mask size must match the node count");
  const auto is_alive = [&](topology::NodeId i) {
    return alive.empty() || alive[i];
  };

  // Activated degree — only links with both endpoints alive count.
  std::vector<std::size_t> degree(node_count, 0);
  for (const auto& [u, v] : links) {
    SNAP_REQUIRE(u < node_count && v < node_count && u != v);
    if (!is_alive(u) || !is_alive(v)) continue;
    ++degree[u];
    ++degree[v];
  }

  linalg::Matrix w = linalg::Matrix::identity(node_count);
  for (const auto& [u, v] : links) {
    if (!is_alive(u) || !is_alive(v)) continue;
    const double weight =
        1.0 / (1.0 + static_cast<double>(std::max(degree[u], degree[v])));
    w(u, v) += weight;
    w(v, u) += weight;
    w(u, u) -= weight;
    w(v, v) -= weight;
  }
  return w;
}

}  // namespace snap::consensus

// Per-activation effective mixing matrices for the gossip fabric.
//
// Under randomized gossip only a sparse activated link subset A_t
// exchanges at tick t, so the round's effective mixing matrix W_t must
// be supported on A_t alone. We use Metropolis–Hastings weights on the
// *activated* subgraph,
//
//   w_ij = 1 / (1 + max{deg_A(i), deg_A(j)})   for {i, j} ∈ A_t,
//
// with identity rows for every node untouched by A_t (or dead). Each
// W_t is symmetric and doubly stochastic by the Metropolis argument, so
// the time-varying EXTRA recursion keeps its consensus fixed points:
// both W_t and W̃_t = (W_t + I)/2 are row-stochastic, hence every
// accumulated (W_{t-1} − W̃_t) correction annihilates consensus
// vectors, and a no-exchange tick (W_t = I) telescopes to a plain
// gradient step. In matching mode deg_A ≤ 1 everywhere, so every
// activated pair mixes with the classic 1/2–1/2 pairwise-gossip
// weights.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "topology/graph.hpp"

namespace snap::consensus {

/// The effective mixing matrix for one activation set. `links` are
/// undirected activated pairs (u < v, as produced by
/// runtime::gossip_activated_links); `alive` masks nodes that may mix
/// (empty = all alive) — links with a dead endpoint are skipped, and
/// dead or non-activated nodes get identity rows. The result is
/// symmetric and doubly stochastic for every input.
linalg::Matrix activated_mixing_matrix(
    std::size_t node_count,
    std::span<const std::pair<topology::NodeId, topology::NodeId>> links,
    const std::vector<bool>& alive = {});

}  // namespace snap::consensus

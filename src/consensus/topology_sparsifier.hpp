// Cost-aware topology sparsification under a SLEM budget.
//
// SNAP (§IV-B) optimizes the mixing matrix W over a *fixed* topology;
// the larger win is pruning the topology itself: every surviving link
// is a per-round communication cost, and most graphs carry edges whose
// removal barely moves the second-largest eigenvalue modulus. The
// sparsifier greedily removes the edge with the best
// cost-saved-per-SLEM-degradation score, re-deriving W on the surviving
// subgraph, and refuses two failure modes by construction:
//
//   - it never disconnects a component (a BFS guard per candidate; the
//     per-component consensus machinery from the partition-tolerance
//     layer owns intentional splits, not the sparsifier), and
//   - it never exceeds the SLEM budget (each candidate's post-removal
//     SLEM is measured before the edge is dropped — dense Jacobi below
//     kDenseSpectralCutoff, deflated Lanczos above, the same routing as
//     every other spectral query).
//
// Determinism contract: sparsify_topology consumes no randomness — the
// result is a pure function of (graph, alive, labels, config). The
// trainer re-runs it at membership/partition epochs, and the schedule
// must replay bitwise across reruns, thread counts, socket shards, and
// checkpoint resume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "consensus/sparse_weight_matrix.hpp"
#include "consensus/weight_optimizer.hpp"
#include "consensus/weight_reprojection.hpp"
#include "topology/graph.hpp"

namespace snap::consensus {

/// How a link's per-round price is derived when no explicit price
/// vector is given.
enum class LinkCostModel {
  kUniform,  ///< every link costs 1 (prune count = cost saved)
  /// Detour distance: the price of {u, v} is the hop count of the
  /// shortest alternative u–v path (2 for a triangle edge, more for a
  /// long-haul shortcut). A link whose endpoints stay close without it
  /// is cheap to keep and cheap to drop; a link that shortcuts a long
  /// path is the expensive long-haul kind the greedy score targets
  /// first — the sparse analogue of the paper's hops-weighted cost
  /// (§II-B), where multi-hop flows cost hops × bytes.
  kHops,
};

struct SparsifierConfig {
  /// Master switch (the trainer/CLI wire-through).
  bool enabled = false;
  /// Hard ceiling on the post-prune SLEM of every component. 1.0
  /// disables the bound (any non-disconnecting removal qualifies).
  double slem_bound = 1.0;
  /// Alternative relative budget: when > 0, the effective bound is
  /// min(slem_bound, slem_before + slem_slack) — "degrade mixing by at
  /// most this much", independent of where the topology starts.
  double slem_slack = 0.0;
  /// Stop pruning once the kept cost drops to this fraction of the
  /// initial cost (0 = prune maximally subject to the SLEM bound).
  double cost_budget = 0.0;
  LinkCostModel cost_model = LinkCostModel::kHops;
  /// Explicit per-link prices indexed by graph.edges() order; overrides
  /// cost_model when non-empty (size must equal edge_count).
  std::vector<double> link_prices;
  /// How W is re-derived on the surviving subgraph: Metropolis row
  /// weights (cheap, every epoch) or the full §IV-B optimizer per
  /// component (expensive; bench/offline use).
  ReprojectionMethod reweight = ReprojectionMethod::kMetropolis;
  WeightOptimizerConfig optimizer;
};

/// One greedy removal, in schedule order.
struct PruneStep {
  topology::NodeId u = 0;
  topology::NodeId v = 0;
  double price = 0.0;       ///< cost saved by this removal
  double slem_after = 0.0;  ///< max component SLEM after the removal
  double cost_after = 0.0;  ///< total kept cost after the removal
};

struct SparsifierResult {
  /// Per-edge survival flag indexed by graph.edges() order. Edges
  /// outside the effective (alive, same-component) subgraph are never
  /// candidates and stay 1 — they are inert, not pruned.
  std::vector<std::uint8_t> edge_kept;
  /// Mixing matrix on the surviving subgraph: structural zeros on the
  /// pruned (and non-effective) links keep every row aligned with the
  /// full graph's neighbor slots.
  SparseWeightMatrix w;
  std::vector<PruneStep> steps;
  double slem_before = 0.0;  ///< max component SLEM before pruning
  double slem_after = 0.0;   ///< max component SLEM after pruning
  double cost_before = 0.0;  ///< total price of the effective edges
  double cost_after = 0.0;   ///< total price of the kept effective edges
  std::size_t links_pruned = 0;
  std::size_t effective_edges = 0;  ///< kept effective edges
};

/// Per-link prices for a cost model, indexed by graph.edges() order.
/// kHops measures detours on the graph as given (no alive mask) —
/// callers with masks use sparsify_topology, which prices the effective
/// subgraph internally.
std::vector<double> link_prices(const topology::Graph& graph,
                                LinkCostModel model);

/// Greedily prunes the effective subgraph of `graph` under `config` and
/// re-derives W on the survivors. `alive` empty means all alive. The
/// labels overload restricts pruning within components (an edge whose
/// endpoints differ in label is inert — the partition machinery owns
/// it); the label-free overload derives components from the alive mask.
/// Pure function of its arguments; no RNG.
SparsifierResult sparsify_topology(const topology::Graph& graph,
                                   const std::vector<bool>& alive,
                                   const SparsifierConfig& config);
SparsifierResult sparsify_topology(const topology::Graph& graph,
                                   const std::vector<bool>& alive,
                                   const std::vector<std::size_t>& labels,
                                   const SparsifierConfig& config);

}  // namespace snap::consensus

// Weight-matrix optimization (paper §IV-B).
//
// The paper derives that convergence is fastest when the mixing matrix
// simultaneously minimizes λ̄_max(W) (problem (23): λ_max(W)=1 is fixed,
// so this minimizes the second-largest eigenvalue) and maximizes
// λ_min(W) (problem (22)). Both are convex problems over the convex
// feasible set of Theorem 2; since one matrix rarely optimizes both,
// SNAP solves each separately and deploys "the solution that can result
// in the larger convergence rate".
//
// Solver: projected subgradient in edge-weight coordinates. For a simple
// eigenvalue λ with unit eigenvector u, the derivative of λ(W) along the
// edge direction of e = {i, j} (which bumps w_ij, w_ji by +1 and w_ii,
// w_jj by −1) is 2u_i u_j − u_i² − u_j² = −(u_i − u_j)². The method uses
// a diminishing step, projects with Dykstra after every step, tracks the
// best feasible iterate, and stops after `patience` non-improving steps.
#pragma once

#include <cstddef>

#include "consensus/edge_weights.hpp"
#include "linalg/matrix.hpp"
#include "topology/graph.hpp"

namespace snap::consensus {

struct WeightOptimizerConfig {
  std::size_t max_iterations = 300;
  /// Stop after this many consecutive steps without improvement.
  std::size_t patience = 40;
  /// Initial subgradient step (decays as step0 / sqrt(k+1)).
  double initial_step = 0.5;
  /// ε of the max-degree initialization (paper eq. (24)).
  double init_epsilon = 0.01;
};

/// Objective report for one optimized matrix.
struct OptimizedWeights {
  linalg::Matrix w;
  double objective = 0.0;        ///< final value of the optimized objective
  std::size_t iterations = 0;    ///< subgradient steps taken
};

/// Problem (23): minimize λ̄_max(W) over the feasible set.
///
/// Caveat (inherent to the paper's formulation): driving the second
/// eigenvalue down without a floor on λ_min can produce near-periodic
/// matrices (λ_min → −1). The selection stage catches this via the
/// convergence score.
OptimizedWeights minimize_second_eigenvalue(
    const topology::Graph& graph,
    const WeightOptimizerConfig& config = {});

/// Problem (22): maximize λ_min(W) over the feasible set. The reported
/// objective is λ_min of the returned matrix.
///
/// Caveat (inherent to the paper's formulation): the identity matrix is
/// feasible and has λ_min = 1, so the unconstrained optimum of (22) is
/// the useless no-mixing matrix; the solver drifts toward it. The
/// selection stage catches this via the convergence score.
OptimizedWeights maximize_smallest_eigenvalue(
    const topology::Graph& graph,
    const WeightOptimizerConfig& config = {});

/// The combined objective (20) that problems (22) and (23) jointly
/// approximate: minimize the second-largest eigenvalue modulus
/// max(λ̄_max(W), −λ_min(W)) (the SLEM). This is the candidate that
/// balances both desiderata and wins the selection on most topologies.
OptimizedWeights minimize_slem(const topology::Graph& graph,
                               const WeightOptimizerConfig& config = {});

/// Which candidate a selection chose.
enum class WeightChoice {
  kMaxDegreeInit,         ///< unoptimized eq. (24) baseline
  kMinSecondEigenvalue,   ///< problem (23) solution
  kMaxSmallestEigenvalue, ///< problem (22) solution
  kMinSlem,               ///< combined objective (20) solution
};

struct WeightSelection {
  linalg::Matrix w;
  WeightChoice choice = WeightChoice::kMaxDegreeInit;
  double score = 0.0;  ///< convergence_score of the winner
};

/// Full §IV-B pipeline: initialize with eq. (24), solve problems (22),
/// (23), and the combined (20)/SLEM surrogate, then return the candidate
/// with the best convergence_score (the initialization is kept as a
/// candidate, so optimization never selects a worse matrix than the
/// baseline — mirroring the paper's "implement the solution that can
/// result in the larger convergence rate").
///
/// Requires a connected graph: on a disconnected one eigenvalue 1
/// repeats per component, the SLEM objective is pinned at 1, and no
/// feasible matrix can drive global consensus — callers with a
/// partitioned topology must optimize each component separately
/// (reproject_weight_matrix's component-aware overload does exactly
/// that).
WeightSelection select_weight_matrix(const topology::Graph& graph,
                                     const WeightOptimizerConfig& config = {});

}  // namespace snap::consensus

// Edge-weight parameterization of the feasible mixing-matrix set.
//
// Every feasible W for topology G (symmetric, doubly stochastic,
// supported on G) is determined by its off-diagonal edge weights: pick
// one weight w_e ≥ 0 per undirected edge e = {i, j}, set
// w_ij = w_ji = w_e, and let the diagonal absorb the slack
// w_ii = 1 − Σ_{e ∋ i} w_e. Feasibility in this coordinate system is the
// polytope
//     P = { w ∈ R^|E| : w_e ≥ 0,  Σ_{e ∋ i} w_e ≤ 1 ∀ i }.
// The weight optimizers (problems (22)/(23)) run projected subgradient
// in these coordinates; EdgeWeightSpace provides the coordinate maps and
// the Dykstra projection onto P.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "topology/graph.hpp"

namespace snap::consensus {

class EdgeWeightSpace {
 public:
  explicit EdgeWeightSpace(const topology::Graph& graph);

  std::size_t edge_count() const noexcept { return edges_.size(); }
  std::size_t node_count() const noexcept { return node_count_; }

  /// Endpoints of edge e (u < v).
  std::pair<topology::NodeId, topology::NodeId> edge(std::size_t e) const;

  /// Builds the full mixing matrix from edge weights (diagonal absorbs
  /// slack). weights.size() must equal edge_count().
  linalg::Matrix to_matrix(const std::vector<double>& weights) const;

  /// Extracts the edge weights of a matrix supported on the graph.
  std::vector<double> from_matrix(const linalg::Matrix& w) const;

  /// True when `weights` lies in the polytope P within tol.
  bool is_feasible(const std::vector<double>& weights,
                   double tol = 1e-9) const;

  /// Euclidean projection onto P via Dykstra's alternating projections
  /// over the nonnegative orthant and the per-node half-spaces
  /// Σ_{e ∋ i} w_e ≤ 1. Runs until the iterate is feasible within
  /// `tol` or `max_rounds` passes complete; the result is then clamped
  /// to exact feasibility (tiny clip) so callers always receive a
  /// feasible point.
  std::vector<double> project(std::vector<double> weights,
                              std::size_t max_rounds = 200,
                              double tol = 1e-10) const;

 private:
  std::size_t node_count_;
  std::vector<std::pair<topology::NodeId, topology::NodeId>> edges_;
  /// incident_[i] lists edge indices touching node i.
  std::vector<std::vector<std::size_t>> incident_;
};

}  // namespace snap::consensus

#include "consensus/neighbor_planning.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "topology/generators.hpp"

namespace snap::consensus {

namespace {

struct WeightedEdge {
  topology::NodeId u;
  topology::NodeId v;
  double weight;
};

}  // namespace

NeighborPlan plan_neighbor_sets(std::size_t nodes, double weight_threshold,
                                const WeightOptimizerConfig& config) {
  SNAP_REQUIRE(nodes >= 2);
  return plan_neighbor_sets(topology::make_complete(nodes),
                            weight_threshold, config);
}

NeighborPlan plan_neighbor_sets(const topology::Graph& candidates,
                                double weight_threshold,
                                const WeightOptimizerConfig& config) {
  SNAP_REQUIRE(candidates.node_count() >= 2);
  SNAP_REQUIRE_MSG(candidates.is_connected(),
                   "candidate topology must be connected");
  SNAP_REQUIRE(weight_threshold >= 0.0);

  // 1. Optimize the mixing matrix over the candidate topology.
  const WeightSelection dense = select_weight_matrix(candidates, config);

  // 2. Partition edges by the pruning bar.
  std::vector<WeightedEdge> kept;
  std::vector<WeightedEdge> dropped;
  for (const auto& [u, v] : candidates.edges()) {
    const WeightedEdge edge{u, v, std::abs(dense.w(u, v))};
    if (edge.weight >= weight_threshold) {
      kept.push_back(edge);
    } else {
      dropped.push_back(edge);
    }
  }

  // 3. Rebuild; restore the strongest dropped edges until connected.
  topology::Graph pruned(candidates.node_count());
  for (const auto& edge : kept) pruned.add_edge(edge.u, edge.v);
  std::sort(dropped.begin(), dropped.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight > b.weight;
            });
  std::size_t restored = 0;
  for (const auto& edge : dropped) {
    if (pruned.is_connected()) break;
    // Only useful if it joins two components; has_edge is impossible
    // here (each edge appears once), so just try it when the endpoints
    // are currently disconnected.
    const auto hops = pruned.hops_from(edge.u);
    if (!hops[edge.v].has_value()) {
      pruned.add_edge(edge.u, edge.v);
      ++restored;
    }
  }
  SNAP_ENSURE(pruned.is_connected());

  // 4. Re-optimize on the pruned topology (the dense solution is not
  // feasible for it once any edge is gone).
  NeighborPlan plan;
  plan.weights = select_weight_matrix(pruned, config);
  plan.pruned_edges =
      candidates.edge_count() - pruned.edge_count();
  plan.restored_edges = restored;
  plan.graph = std::move(pruned);
  return plan;
}

}  // namespace snap::consensus

#include "consensus/edge_weights.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace snap::consensus {

EdgeWeightSpace::EdgeWeightSpace(const topology::Graph& graph)
    : node_count_(graph.node_count()),
      edges_(graph.edges()),
      incident_(graph.node_count()) {
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    incident_[edges_[e].first].push_back(e);
    incident_[edges_[e].second].push_back(e);
  }
}

std::pair<topology::NodeId, topology::NodeId> EdgeWeightSpace::edge(
    std::size_t e) const {
  SNAP_REQUIRE(e < edges_.size());
  return edges_[e];
}

linalg::Matrix EdgeWeightSpace::to_matrix(
    const std::vector<double>& weights) const {
  SNAP_REQUIRE(weights.size() == edges_.size());
  linalg::Matrix w(node_count_, node_count_);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const auto [u, v] = edges_[e];
    w(u, v) = weights[e];
    w(v, u) = weights[e];
  }
  for (std::size_t i = 0; i < node_count_; ++i) {
    double off = 0.0;
    for (const std::size_t e : incident_[i]) off += weights[e];
    w(i, i) = 1.0 - off;
  }
  return w;
}

std::vector<double> EdgeWeightSpace::from_matrix(
    const linalg::Matrix& w) const {
  SNAP_REQUIRE(w.rows() == node_count_ && w.cols() == node_count_);
  std::vector<double> weights(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const auto [u, v] = edges_[e];
    weights[e] = 0.5 * (w(u, v) + w(v, u));
  }
  return weights;
}

bool EdgeWeightSpace::is_feasible(const std::vector<double>& weights,
                                  double tol) const {
  SNAP_REQUIRE(weights.size() == edges_.size());
  for (const double w : weights) {
    if (w < -tol) return false;
  }
  for (std::size_t i = 0; i < node_count_; ++i) {
    double off = 0.0;
    for (const std::size_t e : incident_[i]) off += weights[e];
    if (off > 1.0 + tol) return false;
  }
  return true;
}

std::vector<double> EdgeWeightSpace::project(std::vector<double> weights,
                                             std::size_t max_rounds,
                                             double tol) const {
  SNAP_REQUIRE(weights.size() == edges_.size());
  // Dykstra's algorithm over (node_count_ + 1) convex sets: one
  // half-space per node plus the nonnegative orthant. Each set keeps its
  // own correction term.
  const std::size_t num_sets = node_count_ + 1;
  std::vector<std::vector<double>> corrections(
      num_sets, std::vector<double>(edges_.size(), 0.0));

  std::vector<double> previous_round;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    previous_round = weights;
    for (std::size_t set = 0; set < num_sets; ++set) {
      auto& corr = corrections[set];
      // y = x + correction, then project y onto the set.
      for (std::size_t e = 0; e < weights.size(); ++e) {
        weights[e] += corr[e];
      }
      std::vector<double> projected = weights;
      if (set < node_count_) {
        // Half-space Σ_{e ∋ i} w_e ≤ 1: subtract the violation evenly
        // along the (unit-normalized) constraint normal.
        const auto& inc = incident_[set];
        if (!inc.empty()) {
          double sum = 0.0;
          for (const std::size_t e : inc) sum += projected[e];
          if (sum > 1.0) {
            const double shift =
                (sum - 1.0) / static_cast<double>(inc.size());
            for (const std::size_t e : inc) projected[e] -= shift;
          }
        }
      } else {
        for (double& w : projected) w = std::max(w, 0.0);
      }
      for (std::size_t e = 0; e < weights.size(); ++e) {
        corr[e] = weights[e] - projected[e];
      }
      weights = std::move(projected);
    }
    // Stop once the iterate has stabilized (Dykstra has converged to the
    // projection). Stopping at mere feasibility is NOT enough: the first
    // feasible iterate of a sequential pass is order-dependent and can
    // sit far from the true projection.
    double round_change = 0.0;
    for (std::size_t e = 0; e < weights.size(); ++e) {
      round_change =
          std::max(round_change, std::abs(weights[e] - previous_round[e]));
    }
    if (round_change < tol && is_feasible(weights, 1e-9)) break;
  }

  // Final exact clamp: tiny residual violations are clipped, then any
  // node still over budget has its incident weights rescaled.
  for (double& w : weights) w = std::max(w, 0.0);
  for (std::size_t i = 0; i < node_count_; ++i) {
    double sum = 0.0;
    for (const std::size_t e : incident_[i]) sum += weights[e];
    if (sum > 1.0) {
      const double scale = 1.0 / sum;
      for (const std::size_t e : incident_[i]) weights[e] *= scale;
    }
  }
  SNAP_ENSURE(is_feasible(weights, 1e-12));
  return weights;
}

}  // namespace snap::consensus

#include "consensus/weight_optimizer.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "consensus/mixing_spectrum.hpp"
#include "consensus/weight_matrix.hpp"

namespace snap::consensus {

namespace {

/// One subgradient step's working data: the (minimization) objective
/// value and a subgradient with respect to each edge weight.
///
/// For a simple eigenvalue λ with unit eigenvector u, dλ/dw_e along the
/// edge direction of e = {i, j} (bump w_ij, w_ji by +1; w_ii, w_jj by
/// −1) is 2u_i u_j − u_i² − u_j² = −(u_i − u_j)². Repeated eigenvalues
/// are the norm on symmetric topologies (rings, complete graphs) and a
/// single-eigenvector subgradient oscillates between the copies, so the
/// uuᵀ term is averaged over the eigenvalue *cluster* (all eigenvalues
/// within kClusterTol of the extreme one). Cluster extraction lives in
/// mixing_eigenpairs, which only ever decomposes the extremes — the
/// dense Jacobi oracle below kDenseSpectralCutoff (trajectories
/// bitwise-unchanged at small n), deflated Lanczos above it.
struct ObjectivePoint {
  double value = 0.0;
  std::vector<double> subgradient;  // one entry per edge
};

constexpr double kClusterTol = 1e-6;

/// Cluster-averaged −(u_i − u_j)² over the eigenvector columns of
/// `vectors`, evaluated on every edge of `space`.
std::vector<double> eigenvalue_subgradient(const EdgeWeightSpace& space,
                                           const linalg::Matrix& vectors) {
  const std::size_t count = vectors.cols();
  std::vector<double> grad(space.edge_count(), 0.0);
  for (std::size_t e = 0; e < space.edge_count(); ++e) {
    const auto [i, j] = space.edge(e);
    for (std::size_t c = 0; c < count; ++c) {
      const double diff = vectors(i, c) - vectors(j, c);
      grad[e] -= diff * diff;
    }
    grad[e] /= static_cast<double>(count);
  }
  return grad;
}

/// Problem (23) as a minimization: the second-largest eigenvalue.
/// λ_max(W) = 1 always holds on the feasible set, so minimizing
/// λ_max + λ̄_max reduces to minimizing the second-largest eigenvalue.
ObjectivePoint second_eigenvalue_objective(const EdgeWeightSpace& space,
                                           const MixingEigenpairs& pairs) {
  SNAP_REQUIRE(!pairs.top_values.empty());
  ObjectivePoint point;
  point.value = pairs.top_values.back();
  point.subgradient = eigenvalue_subgradient(space, pairs.top_vectors);
  return point;
}

/// Problem (22) as a minimization: −λ_min(W).
ObjectivePoint neg_smallest_eigenvalue_objective(
    const EdgeWeightSpace& space, const MixingEigenpairs& pairs) {
  SNAP_REQUIRE(!pairs.bottom_values.empty());
  ObjectivePoint point;
  point.value = -pairs.bottom_values.front();
  point.subgradient = eigenvalue_subgradient(space, pairs.bottom_vectors);
  for (double& g : point.subgradient) g = -g;  // chain rule for −λ_min
  return point;
}

/// The combined objective (20): minimize max(λ̄_max(W), −λ_min(W)) — the
/// second-largest eigenvalue *modulus* (SLEM). At a tie both pieces are
/// active and their subgradients are averaged.
ObjectivePoint slem_objective(const EdgeWeightSpace& space,
                              const MixingEigenpairs& pairs) {
  const ObjectivePoint top = second_eigenvalue_objective(space, pairs);
  const ObjectivePoint bottom =
      neg_smallest_eigenvalue_objective(space, pairs);
  if (std::abs(top.value - bottom.value) <= kClusterTol) {
    ObjectivePoint point;
    point.value = std::max(top.value, bottom.value);
    point.subgradient.resize(space.edge_count());
    for (std::size_t e = 0; e < space.edge_count(); ++e) {
      point.subgradient[e] =
          0.5 * (top.subgradient[e] + bottom.subgradient[e]);
    }
    return point;
  }
  return top.value > bottom.value ? top : bottom;
}

/// Shared projected-subgradient driver, always minimizing.
template <typename Objective>
OptimizedWeights run_subgradient(const topology::Graph& graph,
                                 const WeightOptimizerConfig& config,
                                 Objective objective) {
  SNAP_REQUIRE(graph.node_count() >= 2);
  SNAP_REQUIRE_MSG(graph.is_connected(),
                   "the SLEM objective is ill-posed on a disconnected "
                   "graph (eigenvalue 1 repeats per component) — optimize "
                   "each component separately");
  const EdgeWeightSpace space(graph);

  std::vector<double> weights =
      space.from_matrix(max_degree_weights(graph, config.init_epsilon));

  auto evaluate = [&](const std::vector<double>& w) {
    return objective(space,
                     mixing_eigenpairs(space.to_matrix(w), kClusterTol));
  };

  ObjectivePoint current = evaluate(weights);
  std::vector<double> best_weights = weights;
  double best_value = current.value;
  std::size_t since_improvement = 0;
  std::size_t steps = 0;

  for (std::size_t k = 0; k < config.max_iterations; ++k) {
    double norm_sq = 0.0;
    for (const double g : current.subgradient) norm_sq += g * g;
    if (norm_sq < 1e-24) break;  // flat: eigenvector constant on edges

    const double step =
        config.initial_step / std::sqrt(static_cast<double>(k) + 1.0) /
        std::sqrt(norm_sq);
    for (std::size_t e = 0; e < space.edge_count(); ++e) {
      weights[e] -= step * current.subgradient[e];
    }
    weights = space.project(std::move(weights));
    current = evaluate(weights);
    ++steps;

    if (current.value < best_value - 1e-12) {
      best_value = current.value;
      best_weights = weights;
      since_improvement = 0;
    } else if (++since_improvement >= config.patience) {
      break;
    }
  }

  OptimizedWeights out;
  out.w = space.to_matrix(best_weights);
  out.objective = best_value;
  out.iterations = steps;
  SNAP_ENSURE(is_feasible_weight_matrix(out.w, graph, 1e-8));
  return out;
}

}  // namespace

OptimizedWeights minimize_second_eigenvalue(
    const topology::Graph& graph, const WeightOptimizerConfig& config) {
  return run_subgradient(graph, config, second_eigenvalue_objective);
}

OptimizedWeights maximize_smallest_eigenvalue(
    const topology::Graph& graph, const WeightOptimizerConfig& config) {
  OptimizedWeights out =
      run_subgradient(graph, config, neg_smallest_eigenvalue_objective);
  out.objective = -out.objective;  // report λ_min itself
  return out;
}

OptimizedWeights minimize_slem(const topology::Graph& graph,
                               const WeightOptimizerConfig& config) {
  return run_subgradient(graph, config, slem_objective);
}

WeightSelection select_weight_matrix(const topology::Graph& graph,
                                     const WeightOptimizerConfig& config) {
  SNAP_REQUIRE_MSG(graph.is_connected(),
                   "select_weight_matrix needs a connected graph — a "
                   "disconnected W cannot drive global consensus; build a "
                   "block-diagonal matrix per component instead");
  WeightSelection best;
  best.w = max_degree_weights(graph, config.init_epsilon);
  best.choice = WeightChoice::kMaxDegreeInit;
  best.score = convergence_score(best.w);

  const auto consider = [&](OptimizedWeights candidate, WeightChoice choice) {
    const double score = convergence_score(candidate.w);
    if (score > best.score) {
      best.w = std::move(candidate.w);
      best.choice = choice;
      best.score = score;
    }
  };

  consider(minimize_second_eigenvalue(graph, config),
           WeightChoice::kMinSecondEigenvalue);
  consider(maximize_smallest_eigenvalue(graph, config),
           WeightChoice::kMaxSmallestEigenvalue);
  consider(minimize_slem(graph, config), WeightChoice::kMinSlem);
  return best;
}

}  // namespace snap::consensus

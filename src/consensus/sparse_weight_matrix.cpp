#include "consensus/sparse_weight_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "common/check.hpp"

namespace snap::consensus {

SparseWeightMatrix SparseWeightMatrix::pattern_of(
    const topology::Graph& graph) {
  const std::size_t n = graph.node_count();
  SparseWeightMatrix w;
  w.row_ptr_.resize(n + 1, 0);
  for (topology::NodeId i = 0; i < n; ++i) {
    w.row_ptr_[i + 1] = w.row_ptr_[i] + graph.degree(i) + 1;
  }
  w.cols_.resize(w.row_ptr_[n]);
  w.values_.assign(w.row_ptr_[n], 0.0);
  w.diag_.resize(n);
  for (topology::NodeId i = 0; i < n; ++i) {
    // Merge the diagonal into the sorted neighbor list.
    std::size_t at = w.row_ptr_[i];
    bool placed = false;
    for (const topology::NodeId j : graph.neighbors(i)) {
      if (!placed && i < j) {
        w.diag_[i] = at;
        w.cols_[at++] = i;
        placed = true;
      }
      w.cols_[at++] = j;
    }
    if (!placed) {
      w.diag_[i] = at;
      w.cols_[at++] = i;
    }
    SNAP_ASSERT(at == w.row_ptr_[i + 1]);
  }
  return w;
}

SparseWeightMatrix SparseWeightMatrix::max_degree(
    const topology::Graph& graph, double epsilon) {
  SNAP_REQUIRE(epsilon > 0.0);
  SparseWeightMatrix w = pattern_of(graph);
  const std::size_t n = graph.node_count();
  for (topology::NodeId i = 0; i < n; ++i) {
    // Same arithmetic as the dense builder: per-edge weight from the
    // max endpoint degree, diagonal = 1 − Σ over ascending neighbors
    // (the dense row scan adds only +0.0 outside the support, which is
    // exact on the positive partial sums).
    double off = 0.0;
    for (std::size_t k = w.row_ptr_[i]; k < w.row_ptr_[i + 1]; ++k) {
      const topology::NodeId j = w.cols_[k];
      if (j == i) continue;
      const double denom =
          static_cast<double>(std::max(graph.degree(i), graph.degree(j))) +
          epsilon;
      w.values_[k] = 1.0 / denom;
      off += w.values_[k];
    }
    w.values_[w.diag_[i]] = 1.0 - off;
  }
  SNAP_ENSURE(w.is_doubly_stochastic(1e-9));
  return w;
}

SparseWeightMatrix SparseWeightMatrix::metropolis_on_survivors(
    const topology::Graph& graph, const std::vector<bool>& alive) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(alive.empty() || alive.size() == n,
                   "alive mask size must match the node count");
  const auto is_alive = [&](topology::NodeId i) {
    return alive.empty() || alive[i];
  };

  std::vector<std::size_t> alive_degree(n, 0);
  for (const auto& [u, v] : graph.edges()) {
    if (is_alive(u) && is_alive(v)) {
      ++alive_degree[u];
      ++alive_degree[v];
    }
  }

  SparseWeightMatrix w = pattern_of(graph);
  for (topology::NodeId i = 0; i < n; ++i) {
    if (!is_alive(i)) {
      w.values_[w.diag_[i]] = 1.0;  // identity row, zero link weights
      continue;
    }
    double off = 0.0;
    for (std::size_t k = w.row_ptr_[i]; k < w.row_ptr_[i + 1]; ++k) {
      const topology::NodeId j = w.cols_[k];
      if (j == i || !is_alive(j)) continue;
      const double weight =
          1.0 / (1.0 + static_cast<double>(
                           std::max(alive_degree[i], alive_degree[j])));
      w.values_[k] = weight;
      off += weight;
    }
    w.values_[w.diag_[i]] = 1.0 - off;
  }
  return w;
}

SparseWeightMatrix SparseWeightMatrix::metropolis_on_components(
    const topology::Graph& graph, const std::vector<bool>& alive,
    const std::vector<std::size_t>& labels) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(alive.empty() || alive.size() == n,
                   "alive mask size must match the node count");
  SNAP_REQUIRE_MSG(labels.size() == n,
                   "component labels must have one entry per node");
  constexpr std::size_t kEx = topology::ComponentMap::kExcluded;
  const auto effective = [&](topology::NodeId i) {
    return (alive.empty() || alive[i]) && labels[i] != kEx;
  };
  // Mirrors metropolis_on_survivors exactly, with the aliveness test
  // extended by label equality — so a single-component labeling yields
  // the identical doubles in the identical order.
  std::vector<std::size_t> alive_degree(n, 0);
  for (const auto& [u, v] : graph.edges()) {
    if (effective(u) && effective(v) && labels[u] == labels[v]) {
      ++alive_degree[u];
      ++alive_degree[v];
    }
  }

  SparseWeightMatrix w = pattern_of(graph);
  for (topology::NodeId i = 0; i < n; ++i) {
    if (!effective(i)) {
      w.values_[w.diag_[i]] = 1.0;  // identity row, zero link weights
      continue;
    }
    double off = 0.0;
    for (std::size_t k = w.row_ptr_[i]; k < w.row_ptr_[i + 1]; ++k) {
      const topology::NodeId j = w.cols_[k];
      if (j == i || !effective(j) || labels[j] != labels[i]) continue;
      const double weight =
          1.0 / (1.0 + static_cast<double>(
                           std::max(alive_degree[i], alive_degree[j])));
      w.values_[k] = weight;
      off += weight;
    }
    w.values_[w.diag_[i]] = 1.0 - off;
  }
  return w;
}

SparseWeightMatrix SparseWeightMatrix::metropolis_on_subgraph(
    const topology::Graph& graph, const std::vector<std::uint8_t>& edge_kept,
    const std::vector<bool>& alive, const std::vector<std::size_t>& labels) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(edge_kept.size() == graph.edge_count(),
                   "edge_kept must have one entry per edge");
  SNAP_REQUIRE_MSG(alive.empty() || alive.size() == n,
                   "alive mask size must match the node count");
  SNAP_REQUIRE_MSG(labels.empty() || labels.size() == n,
                   "component labels must have one entry per node");
  constexpr std::size_t kEx = topology::ComponentMap::kExcluded;
  const auto effective = [&](topology::NodeId i) {
    return (alive.empty() || alive[i]) && (labels.empty() || labels[i] != kEx);
  };
  const auto same_block = [&](topology::NodeId i, topology::NodeId j) {
    return labels.empty() || labels[i] == labels[j];
  };
  // Mirrors metropolis_on_survivors / metropolis_on_components exactly,
  // with the aliveness test extended by the kept-edge flag — an
  // all-kept mask yields the identical doubles in the identical order.
  std::unordered_set<std::uint64_t> dropped;
  const auto& edges = graph.edges();
  std::vector<std::size_t> alive_degree(n, 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    if (edge_kept[e] == 0) {
      dropped.insert((static_cast<std::uint64_t>(v) << 32) |
                     static_cast<std::uint64_t>(u));
      continue;
    }
    if (effective(u) && effective(v) && same_block(u, v)) {
      ++alive_degree[u];
      ++alive_degree[v];
    }
  }
  const auto is_dropped = [&](topology::NodeId i, topology::NodeId j) {
    const auto lo = static_cast<std::uint64_t>(std::min(i, j));
    const auto hi = static_cast<std::uint64_t>(std::max(i, j));
    return !dropped.empty() && dropped.contains((hi << 32) | lo);
  };

  SparseWeightMatrix w = pattern_of(graph);
  for (topology::NodeId i = 0; i < n; ++i) {
    if (!effective(i)) {
      w.values_[w.diag_[i]] = 1.0;  // identity row, zero link weights
      continue;
    }
    double off = 0.0;
    for (std::size_t k = w.row_ptr_[i]; k < w.row_ptr_[i + 1]; ++k) {
      const topology::NodeId j = w.cols_[k];
      if (j == i || !effective(j) || !same_block(i, j) || is_dropped(i, j)) {
        continue;
      }
      const double weight =
          1.0 / (1.0 + static_cast<double>(
                           std::max(alive_degree[i], alive_degree[j])));
      w.values_[k] = weight;
      off += weight;
    }
    w.values_[w.diag_[i]] = 1.0 - off;
  }
  return w;
}

SparseWeightMatrix SparseWeightMatrix::activated_mixing(
    const topology::Graph& graph,
    std::span<const std::pair<topology::NodeId, topology::NodeId>> links,
    const std::vector<bool>& alive) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE(n > 0);
  SNAP_REQUIRE_MSG(alive.empty() || alive.size() == n,
                   "alive mask size must match the node count");
  const auto is_alive = [&](topology::NodeId i) {
    return alive.empty() || alive[i];
  };

  // Activated degree — only links with both endpoints alive count.
  std::vector<std::size_t> degree(n, 0);
  for (const auto& [u, v] : links) {
    SNAP_REQUIRE(u < n && v < n && u != v);
    if (!is_alive(u) || !is_alive(v)) continue;
    ++degree[u];
    ++degree[v];
  }

  SparseWeightMatrix w = pattern_of(graph);
  for (topology::NodeId i = 0; i < n; ++i) {
    w.values_[w.diag_[i]] = 1.0;
  }
  const auto slot = [&](topology::NodeId i, topology::NodeId j) {
    const auto begin = w.cols_.begin() + static_cast<std::ptrdiff_t>(
                                             w.row_ptr_[i]);
    const auto end = w.cols_.begin() + static_cast<std::ptrdiff_t>(
                                           w.row_ptr_[i + 1]);
    const auto it = std::lower_bound(begin, end, j);
    SNAP_REQUIRE_MSG(it != end && *it == j,
                     "activated link (" << i << "," << j
                                        << ") is not a graph edge");
    return static_cast<std::size_t>(it - w.cols_.begin());
  };
  // Same per-link updates in the same order as the dense builder, so
  // every diagonal accumulates its subtractions identically.
  for (const auto& [u, v] : links) {
    if (!is_alive(u) || !is_alive(v)) continue;
    const double weight =
        1.0 / (1.0 + static_cast<double>(std::max(degree[u], degree[v])));
    w.values_[slot(u, v)] += weight;
    w.values_[slot(v, u)] += weight;
    w.values_[w.diag_[u]] -= weight;
    w.values_[w.diag_[v]] -= weight;
  }
  return w;
}

SparseWeightMatrix SparseWeightMatrix::from_dense(
    const linalg::Matrix& w, const topology::Graph& graph) {
  SNAP_REQUIRE_MSG(w.rows() == graph.node_count() && w.is_square(),
                   "dense matrix shape does not match the graph");
  SparseWeightMatrix out = pattern_of(graph);
  for (topology::NodeId i = 0; i < graph.node_count(); ++i) {
    for (std::size_t k = out.row_ptr_[i]; k < out.row_ptr_[i + 1]; ++k) {
      out.values_[k] = w(i, out.cols_[k]);
    }
  }
  return out;
}

SparseWeightMatrix::RowView SparseWeightMatrix::row(
    topology::NodeId i) const {
  SNAP_REQUIRE(i < node_count());
  const std::size_t from = row_ptr_[i];
  const std::size_t count = row_ptr_[i + 1] - from;
  return {{cols_.data() + from, count}, {values_.data() + from, count}};
}

double SparseWeightMatrix::diagonal(topology::NodeId i) const {
  SNAP_REQUIRE(i < node_count());
  return values_[diag_[i]];
}

double SparseWeightMatrix::entry(topology::NodeId i,
                                 topology::NodeId j) const {
  SNAP_REQUIRE(i < node_count() && j < node_count());
  const auto begin =
      cols_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end =
      cols_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - cols_.begin())];
}

void SparseWeightMatrix::accumulate_matvec(std::span<const double> x,
                                           std::span<double> y) const {
  const std::size_t n = node_count();
  SNAP_REQUIRE(x.size() == n && y.size() == n);
  for (topology::NodeId i = 0; i < n; ++i) {
    double acc = y[i];
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      acc += values_[k] * x[cols_[k]];
    }
    y[i] = acc;
  }
}

linalg::Matrix SparseWeightMatrix::to_dense() const {
  const std::size_t n = node_count();
  linalg::Matrix out(n, n);
  for (topology::NodeId i = 0; i < n; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      out(i, cols_[k]) = values_[k];
    }
  }
  return out;
}

bool SparseWeightMatrix::is_symmetric(double tol) const {
  for (topology::NodeId i = 0; i < node_count(); ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const topology::NodeId j = cols_[k];
      if (j <= i) continue;  // check each unordered pair once
      if (std::abs(values_[k] - entry(j, i)) > tol) return false;
    }
  }
  return true;
}

bool SparseWeightMatrix::is_doubly_stochastic(double tol) const {
  const std::size_t n = node_count();
  std::vector<double> col_sum(n, 0.0);
  for (topology::NodeId i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const double value = values_[k];
      if (value < -tol) return false;
      row_sum += value;
      col_sum[cols_[k]] += value;
    }
    if (std::abs(row_sum - 1.0) > tol) return false;
  }
  for (const double sum : col_sum) {
    if (std::abs(sum - 1.0) > tol) return false;
  }
  return true;
}

bool is_feasible_weight_matrix(const SparseWeightMatrix& w,
                               const topology::Graph& graph, double tol) {
  const std::size_t n = graph.node_count();
  if (w.node_count() != n) return false;
  if (!w.is_symmetric(tol)) return false;
  if (!w.is_doubly_stochastic(tol)) return false;
  // Support check: every stored column must be the diagonal or a graph
  // neighbor. Builders guarantee this structurally; from_dense of an
  // infeasible matrix cannot smuggle mass outside the pattern (it is
  // dropped), so the stochasticity checks above catch it.
  for (topology::NodeId i = 0; i < n; ++i) {
    const auto row = w.row(i);
    for (std::size_t k = 0; k < row.cols.size(); ++k) {
      const topology::NodeId j = row.cols[k];
      if (j == i) continue;
      if (!graph.has_edge(i, j) && std::abs(row.values[k]) > tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace snap::consensus

// The λ̄_max / λ_min-only spectral queries the consensus layer actually
// makes (paper §III-A, §IV-B).
//
// Nothing downstream ever needs a full spectrum: convergence_score
// consumes λ̄_max and λ_min, the §IV-B subgradient needs the eigenvalue
// clusters (with eigenvectors) at the two extremes, and SLEM is
// max(|λ̄_max|, |λ_min|). This header is the single routing point:
//
//   n ≤ kDenseSpectralCutoff  — dense cyclic Jacobi, the small-n
//       oracle. Bitwise-identical to the historical full-spectrum
//       path, which is what keeps optimizer trajectories unchanged
//       at small n.
//   n > kDenseSpectralCutoff  — deflated Lanczos (linalg/lanczos),
//       O(nnz·m) on sparse operators and O(n²·m) on dense ones,
//       never the O(n³) Jacobi.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "consensus/sparse_weight_matrix.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace snap::consensus {

/// Above this node count the dense Jacobi oracle gives way to Lanczos.
/// Jacobi at 160 rows is ~10 ms — cheap enough that everything the
/// small-n property tests compare runs on the exact path.
inline constexpr std::size_t kDenseSpectralCutoff = 160;

/// λ̄_max within this distance of the structural eigenvalue 1 means the
/// eigenvalue 1 is (numerically) repeated — for a symmetric doubly
/// stochastic matrix that is the spectral signature of a disconnected
/// support: each component contributes its own invariant ones-vector.
inline constexpr double kOneMultiplicityTol = 1e-9;

/// The two spectral extremes of a feasible mixing matrix (λ_max = 1 is
/// structural and not reported).
struct MixingExtremes {
  double lambda_bar_max = 0.0;  ///< largest eigenvalue below the trivial 1
  double lambda_min = 0.0;      ///< smallest eigenvalue
  double slem = 0.0;            ///< max(|λ̄_max|, |λ_min|)
  /// True when eigenvalue 1 has multiplicity > 1 (dense oracle counts
  /// it in the full spectrum; Lanczos sees it as λ̄_max ≥ 1 −
  /// kOneMultiplicityTol after deflating the global ones-vector), i.e.
  /// the matrix cannot drive consensus across its whole index set
  /// (disconnected support, or the identity).
  bool one_repeated = false;
  bool ergodic() const noexcept { return !one_repeated; }
};

/// Thrown by the ergodic_* checked entry points when the mixing matrix
/// has a repeated eigenvalue 1 — a split-brain weight matrix reached a
/// caller that assumed a connected (single-component) support.
class DisconnectedMixingError : public std::runtime_error {
 public:
  explicit DisconnectedMixingError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Extremes of a dense symmetric doubly-stochastic matrix. Never throws
/// on a disconnected support — it reports one via `one_repeated` (the
/// identity matrix, n isolated self-loops, legitimately scores 0).
MixingExtremes mixing_extremes(const linalg::Matrix& w);

/// Extremes of a sparse mixing matrix. Requires a connected support for
/// the Lanczos leg (see lanczos.hpp); below the cutoff the query runs
/// on to_dense() and tolerates anything the Jacobi oracle does.
MixingExtremes mixing_extremes(const SparseWeightMatrix& w);

/// Checked variants for callers that require a single ergodic class —
/// per-component consensus blocks, the §IV-B optimizer's scoring, the
/// partition-aware trainers. Identical values to mixing_extremes, but
/// fail loudly with DisconnectedMixingError when eigenvalue 1 is
/// repeated instead of letting a zero spectral gap masquerade as a
/// (terrible) convergence rate.
MixingExtremes ergodic_mixing_extremes(const linalg::Matrix& w);
MixingExtremes ergodic_mixing_extremes(const SparseWeightMatrix& w);

/// spectral_summary-compatible adapter for sparse matrices: λ_max is
/// pinned at the structural 1 and λ̄_min — an *interior* eigenvalue no
/// extreme-value iteration can see — is reported as 0 and must not be
/// consumed (no production caller does; it exists for the dense
/// summary's step-size diagnostics).
linalg::SpectralSummary spectral_summary(const SparseWeightMatrix& w);

/// The eigenvalue clusters at both spectral extremes, with unit
/// eigenvectors — the §IV-B subgradient's working set. `cluster_tol`
/// bounds how far from the extreme an eigenvalue may sit and still
/// join its cluster (repeated extremes are the norm on symmetric
/// topologies). Values ascend; vectors are column-aligned.
struct MixingEigenpairs {
  std::vector<double> top_values;     ///< cluster ending at λ̄_max
  linalg::Matrix top_vectors;         ///< n × top_values.size()
  std::vector<double> bottom_values;  ///< cluster starting at λ_min
  linalg::Matrix bottom_vectors;      ///< n × bottom_values.size()
};

MixingEigenpairs mixing_eigenpairs(const linalg::Matrix& w,
                                   double cluster_tol);

}  // namespace snap::consensus

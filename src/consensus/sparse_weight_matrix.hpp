// Adjacency-sparse (CSR) mixing matrices.
//
// A feasible mixing matrix is supported on {self} ∪ neighbors, so at
// edge scale it has O(|E|) nonzeros, not O(n²). SparseWeightMatrix
// stores exactly that pattern in CSR form — row i holds the index-sorted
// columns {i} ∪ B_i with their weights, *including structural zeros* on
// non-activated links — so a SnapNode's weight row is one contiguous
// span aligned with its sorted neighbor list, and every builder is
// O(|V| + |E|).
//
// Builders mirror their dense counterparts operation-for-operation
// (same weights, same accumulation order), so a trainer fed the sparse
// matrix walks a bitwise-identical trajectory to one fed the dense
// matrix it replaces. The dense Jacobi path remains the small-n oracle:
// to_dense()/from_dense() convert losslessly over the support.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "topology/graph.hpp"

namespace snap::consensus {

class SparseWeightMatrix {
 public:
  SparseWeightMatrix() = default;

  /// One row's nonzero pattern: index-sorted columns (always containing
  /// the diagonal) and their aligned weights.
  struct RowView {
    std::span<const topology::NodeId> cols;
    std::span<const double> values;
  };

  /// Max-degree weights, paper eq. (24) — the sparse twin of
  /// max_degree_weights (same doubles, same order).
  static SparseWeightMatrix max_degree(const topology::Graph& graph,
                                       double epsilon = 0.01);

  /// Metropolis–Hastings on the alive-induced subgraph, identity rows
  /// for dead nodes — the sparse twin of the kMetropolis re-projection.
  /// `alive` empty means all alive.
  static SparseWeightMatrix metropolis_on_survivors(
      const topology::Graph& graph, const std::vector<bool>& alive = {});

  /// Component-aware Metropolis: like metropolis_on_survivors, but an
  /// edge contributes only when both endpoints are alive AND share a
  /// component label — the resulting matrix is block-diagonal over the
  /// components. With all alive nodes in one component the arithmetic
  /// is identical (same doubles, same order) to metropolis_on_survivors.
  /// `labels` has one entry per node (ComponentMap::kExcluded on dead
  /// nodes is allowed; an alive node labeled kExcluded gets an identity
  /// row).
  static SparseWeightMatrix metropolis_on_components(
      const topology::Graph& graph, const std::vector<bool>& alive,
      const std::vector<std::size_t>& labels);

  /// Metropolis–Hastings restricted to a kept-edge subset: an edge
  /// contributes only when edge_kept[e] != 0 for its graph.edges()
  /// index AND both endpoints are alive AND (when labels are given)
  /// share a component label — the topology sparsifier's W builder.
  /// With every edge kept this is bitwise identical (same doubles, same
  /// order) to metropolis_on_survivors (labels empty) /
  /// metropolis_on_components (labels given). Pruned links keep their
  /// structural-zero slots, so rows stay aligned with the full graph's
  /// neighbor lists.
  static SparseWeightMatrix metropolis_on_subgraph(
      const topology::Graph& graph,
      const std::vector<std::uint8_t>& edge_kept,
      const std::vector<bool>& alive = {},
      const std::vector<std::size_t>& labels = {});

  /// Per-activation effective mixing matrix for the gossip fabric: the
  /// sparse twin of activated_mixing_matrix, with the pattern taken
  /// from the *full* graph adjacency (non-activated links carry weight
  /// 0), so each row stays aligned with the node's neighbor slots
  /// across ticks.
  static SparseWeightMatrix activated_mixing(
      const topology::Graph& graph,
      std::span<const std::pair<topology::NodeId, topology::NodeId>> links,
      const std::vector<bool>& alive = {});

  /// Restriction of a dense feasible matrix onto the graph's support.
  /// Entries outside {self} ∪ neighbors are dropped — callers validate
  /// feasibility (which bounds those entries by tol) beforehand.
  static SparseWeightMatrix from_dense(const linalg::Matrix& w,
                                       const topology::Graph& graph);

  std::size_t node_count() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  std::size_t nonzero_count() const noexcept { return values_.size(); }

  RowView row(topology::NodeId i) const;

  /// Weight at (i, i).
  double diagonal(topology::NodeId i) const;

  /// Weight at (i, j); 0 outside the stored pattern.
  double entry(topology::NodeId i, topology::NodeId j) const;

  /// y += W x over the stored pattern (y is NOT zeroed — callers that
  /// want y = Wx pass a zeroed y). Row-major, ascending columns:
  /// deterministic accumulation order.
  void accumulate_matvec(std::span<const double> x,
                         std::span<double> y) const;

  linalg::Matrix to_dense() const;

  /// |w_ij − w_ji| ≤ tol over the pattern (pattern itself is symmetric
  /// for every builder).
  bool is_symmetric(double tol = 1e-12) const;

  /// Every row and column sums to 1 within tol. O(nnz).
  bool is_doubly_stochastic(double tol = 1e-9) const;

 private:
  /// Pattern {i} ∪ neighbors(i) per row, zero values, diag_ filled.
  static SparseWeightMatrix pattern_of(const topology::Graph& graph);

  std::vector<std::size_t> row_ptr_;
  std::vector<topology::NodeId> cols_;
  std::vector<double> values_;
  std::vector<std::size_t> diag_;  ///< index into values_ of (i, i)
};

/// Sparse twin of is_feasible_weight_matrix: right shape, symmetric,
/// doubly stochastic, and supported on {self} ∪ neighbors. O(|E|).
bool is_feasible_weight_matrix(const SparseWeightMatrix& w,
                               const topology::Graph& graph,
                               double tol = 1e-8);

}  // namespace snap::consensus

#include "consensus/weight_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "consensus/mixing_spectrum.hpp"
#include "linalg/eigen.hpp"

namespace snap::consensus {

linalg::Matrix max_degree_weights(const topology::Graph& graph,
                                  double epsilon) {
  SNAP_REQUIRE(epsilon > 0.0);
  const std::size_t n = graph.node_count();
  linalg::Matrix w(n, n);
  for (const auto& [u, v] : graph.edges()) {
    const double denom =
        static_cast<double>(std::max(graph.degree(u), graph.degree(v))) +
        epsilon;
    w(u, v) = 1.0 / denom;
    w(v, u) = 1.0 / denom;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) off += w(i, j);
    }
    w(i, i) = 1.0 - off;
  }
  SNAP_ENSURE(linalg::is_doubly_stochastic(w, 1e-9));
  return w;
}

linalg::Matrix w_tilde(const linalg::Matrix& w) {
  SNAP_REQUIRE(w.is_square());
  linalg::Matrix out = w;
  out += linalg::Matrix::identity(w.rows());
  out *= 0.5;
  return out;
}

bool is_feasible_weight_matrix(const linalg::Matrix& w,
                               const topology::Graph& graph, double tol) {
  const std::size_t n = graph.node_count();
  if (w.rows() != n || w.cols() != n) return false;
  if (!w.is_symmetric(tol)) return false;
  if (!linalg::is_doubly_stochastic(w, tol)) return false;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || graph.has_edge(i, j)) continue;
      if (std::abs(w(i, j)) > tol) return false;
    }
  }
  return true;
}

namespace {

double score_of(const MixingExtremes& spectrum) {
  const double gap = 1.0 - spectrum.lambda_bar_max;
  const double safety =
      std::min(1.0, (1.0 + spectrum.lambda_min) / 0.2);
  return gap * std::max(safety, 0.0);
}

}  // namespace

double convergence_score(const linalg::Matrix& w) {
  return score_of(mixing_extremes(w));
}

double convergence_score(const SparseWeightMatrix& w) {
  return score_of(mixing_extremes(w));
}

}  // namespace snap::consensus

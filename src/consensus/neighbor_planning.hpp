// Neighbor-set planning (paper §IV-D).
//
// When the physical neighbor sets are not known in advance, SNAP
// "assume[s] that every edge server is neighboring with all other edge
// servers and optimize[s] the weight matrix; if the weight between two
// edge servers is less than a predefined threshold, we can remove them
// from each other's neighbor set" — pruning weak links both reduces the
// topology maintenance burden and the communication cost.
//
// plan_neighbor_sets implements exactly that: optimize W over the
// complete graph, drop edges whose optimized weight falls below the
// threshold (re-adding the strongest dropped edges if pruning would
// disconnect the network), then re-optimize W on the pruned topology.
#pragma once

#include <cstddef>

#include "consensus/weight_optimizer.hpp"
#include "linalg/matrix.hpp"
#include "topology/graph.hpp"

namespace snap::consensus {

struct NeighborPlan {
  /// The pruned peer topology (each remaining edge is a neighbor pair).
  topology::Graph graph;
  /// Mixing matrix re-optimized for the pruned topology.
  WeightSelection weights;
  /// Edges removed relative to the complete graph.
  std::size_t pruned_edges = 0;
  /// Edges that had to be re-added to keep the network connected.
  std::size_t restored_edges = 0;
};

/// Plans neighbor sets for `nodes` edge servers with no prior topology
/// knowledge. `weight_threshold` is the §IV-D pruning bar on the
/// optimized complete-graph weights. Requires nodes >= 2 and
/// weight_threshold >= 0. The result's graph is always connected.
NeighborPlan plan_neighbor_sets(std::size_t nodes, double weight_threshold,
                                const WeightOptimizerConfig& config = {});

/// Variant that prunes an *existing* candidate topology instead of the
/// complete graph (useful when a coarse reachability graph is known but
/// should be thinned to cut communication cost).
NeighborPlan plan_neighbor_sets(const topology::Graph& candidates,
                                double weight_threshold,
                                const WeightOptimizerConfig& config = {});

}  // namespace snap::consensus

#include "consensus/topology_sparsifier.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "consensus/mixing_spectrum.hpp"

namespace snap::consensus {

namespace {

constexpr std::size_t kExcluded = topology::ComponentMap::kExcluded;

/// Floor on the per-step SLEM degradation: a removal can *improve* the
/// SLEM (e.g. breaking a near-periodic structure), and the score
/// price / degradation must stay finite and favor such free removals.
constexpr double kMinDegradation = 1e-12;

/// Everything the greedy loop needs about the effective subgraph,
/// derived once. All state is a pure function of (graph, alive, labels,
/// config) — no randomness anywhere in this file.
struct Workspace {
  const topology::Graph& graph;
  std::vector<std::uint8_t> effective_node;
  std::vector<std::size_t> labels;
  std::size_t component_count = 0;
  /// Sorted member list and global→compact index map per component.
  std::vector<std::vector<topology::NodeId>> comp_nodes;
  std::vector<std::size_t> compact_index;
  /// Edge indices (into graph.edges()) per component.
  std::vector<std::vector<std::size_t>> comp_edges;
};

bool is_effective_node(const std::vector<bool>& alive,
                       const std::vector<std::size_t>& labels,
                       topology::NodeId i) {
  return (alive.empty() || alive[i]) &&
         (labels.empty() || labels[i] != kExcluded);
}

Workspace build_workspace(const topology::Graph& graph,
                          const std::vector<bool>& alive,
                          const std::vector<std::size_t>& labels_in) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(alive.empty() || alive.size() == n,
                   "alive mask size must match the node count");
  SNAP_REQUIRE_MSG(labels_in.empty() || labels_in.size() == n,
                   "component labels must have one entry per node");
  Workspace ws{graph, {}, {}, 0, {}, {}, {}};
  ws.effective_node.assign(n, 0);
  for (topology::NodeId i = 0; i < n; ++i) {
    ws.effective_node[i] = is_effective_node(alive, labels_in, i) ? 1 : 0;
  }
  if (labels_in.empty()) {
    // Derive the component structure from the alive mask: the masked
    // labeling is canonical (ascending lowest-member order), so the
    // schedule stays a pure function of (graph, alive).
    ws.labels =
        topology::connected_components(graph, ws.effective_node).label;
  } else {
    ws.labels = labels_in;
    for (topology::NodeId i = 0; i < n; ++i) {
      if (ws.effective_node[i] == 0) ws.labels[i] = kExcluded;
    }
  }
  for (topology::NodeId i = 0; i < n; ++i) {
    if (ws.effective_node[i] != 0 && ws.labels[i] != kExcluded) {
      ws.component_count = std::max(ws.component_count, ws.labels[i] + 1);
    }
  }
  ws.comp_nodes.resize(ws.component_count);
  ws.compact_index.assign(n, 0);
  for (topology::NodeId i = 0; i < n; ++i) {
    if (ws.effective_node[i] == 0 || ws.labels[i] == kExcluded) continue;
    ws.compact_index[i] = ws.comp_nodes[ws.labels[i]].size();
    ws.comp_nodes[ws.labels[i]].push_back(i);
  }
  ws.comp_edges.resize(ws.component_count);
  const auto& edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    if (ws.effective_node[u] == 0 || ws.effective_node[v] == 0) continue;
    if (ws.labels[u] == kExcluded || ws.labels[u] != ws.labels[v]) continue;
    ws.comp_edges[ws.labels[u]].push_back(e);
  }
  return ws;
}

/// True when component `c` stays connected over its kept edges with
/// `skip` (an index into graph.edges(), or npos) additionally removed.
bool stays_connected(const Workspace& ws,
                     const std::vector<std::uint8_t>& kept, std::size_t c,
                     std::size_t skip) {
  const std::vector<topology::NodeId>& nodes = ws.comp_nodes[c];
  const std::size_t sz = nodes.size();
  if (sz <= 1) return true;
  std::vector<std::vector<std::size_t>> adjacency(sz);
  for (const std::size_t e : ws.comp_edges[c]) {
    if (e == skip || kept[e] == 0) continue;
    const auto [u, v] = ws.graph.edges()[e];
    adjacency[ws.compact_index[u]].push_back(ws.compact_index[v]);
    adjacency[ws.compact_index[v]].push_back(ws.compact_index[u]);
  }
  std::vector<std::uint8_t> seen(sz, 0);
  std::vector<std::size_t> frontier{0};
  seen[0] = 1;
  std::size_t reached = 1;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    for (const std::size_t b : adjacency[frontier[head]]) {
      if (seen[b] == 0) {
        seen[b] = 1;
        frontier.push_back(b);
        ++reached;
      }
    }
  }
  return reached == sz;
}

/// SLEM of component `c`'s Metropolis matrix over its kept edges, with
/// `skip` additionally removed. Routes through mixing_extremes — dense
/// Jacobi below kDenseSpectralCutoff, deflated Lanczos above — exactly
/// like every other spectral query. Callers guarantee connectivity
/// (the Lanczos leg requires it).
double component_slem(const Workspace& ws,
                      const std::vector<std::uint8_t>& kept, std::size_t c,
                      std::size_t skip) {
  const std::vector<topology::NodeId>& nodes = ws.comp_nodes[c];
  if (nodes.size() < 2) return 0.0;
  topology::Graph sub(nodes.size());
  for (const std::size_t e : ws.comp_edges[c]) {
    if (e == skip || kept[e] == 0) continue;
    const auto [u, v] = ws.graph.edges()[e];
    sub.add_edge(ws.compact_index[u], ws.compact_index[v]);
  }
  return mixing_extremes(SparseWeightMatrix::metropolis_on_survivors(sub))
      .slem;
}

/// Detour distance of edge `e` = {u, v}: BFS hops from u to v over the
/// effective subgraph with e itself removed; unreachable (a bridge —
/// the connectivity guard never prunes it anyway) prices at n.
double detour_price(const Workspace& ws, std::size_t e) {
  const auto [src, dst] = ws.graph.edges()[e];
  const std::size_t n = ws.graph.node_count();
  std::vector<std::size_t> dist(n, kExcluded);
  std::vector<topology::NodeId> frontier{src};
  dist[src] = 0;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const topology::NodeId u = frontier[head];
    if (u == dst) break;
    for (const topology::NodeId v : ws.graph.neighbors(u)) {
      if (ws.effective_node[v] == 0 || ws.labels[v] != ws.labels[u]) {
        continue;
      }
      if ((u == src && v == dst) || (u == dst && v == src)) continue;
      if (dist[v] != kExcluded) continue;
      dist[v] = dist[u] + 1;
      frontier.push_back(v);
    }
  }
  return dist[dst] == kExcluded ? static_cast<double>(n)
                                : static_cast<double>(dist[dst]);
}

std::vector<double> effective_prices(const Workspace& ws,
                                     const SparsifierConfig& config) {
  const auto& edges = ws.graph.edges();
  std::vector<double> prices(edges.size(), 0.0);
  if (!config.link_prices.empty()) {
    SNAP_REQUIRE_MSG(config.link_prices.size() == edges.size(),
                     "link_prices has " << config.link_prices.size()
                                        << " entries for "
                                        << edges.size() << " edges");
    prices = config.link_prices;
    return prices;
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    if (ws.effective_node[u] == 0 || ws.effective_node[v] == 0 ||
        ws.labels[u] == kExcluded || ws.labels[u] != ws.labels[v]) {
      continue;  // inert edge: never a candidate, price irrelevant
    }
    prices[e] = config.cost_model == LinkCostModel::kUniform
                    ? 1.0
                    : detour_price(ws, e);
  }
  return prices;
}

SparseWeightMatrix reweight_survivors(const Workspace& ws,
                                      const std::vector<bool>& alive,
                                      const std::vector<std::size_t>&
                                          labels_in,
                                      const std::vector<std::uint8_t>& kept,
                                      const SparsifierConfig& config) {
  if (config.reweight == ReprojectionMethod::kMetropolis) {
    return SparseWeightMatrix::metropolis_on_subgraph(ws.graph, kept, alive,
                                                      labels_in);
  }
  // §IV-B optimizer per surviving component, scattered into a dense
  // identity scaffold (identity rows for dead/excluded nodes) and
  // restricted back onto the full graph's pattern so pruned links keep
  // their structural-zero slots.
  const std::size_t n = ws.graph.node_count();
  linalg::Matrix dense(n, n);
  for (topology::NodeId i = 0; i < n; ++i) dense(i, i) = 1.0;
  for (std::size_t c = 0; c < ws.component_count; ++c) {
    const std::vector<topology::NodeId>& nodes = ws.comp_nodes[c];
    if (nodes.size() < 2) continue;
    topology::Graph sub(nodes.size());
    for (const std::size_t e : ws.comp_edges[c]) {
      if (kept[e] == 0) continue;
      const auto [u, v] = ws.graph.edges()[e];
      sub.add_edge(ws.compact_index[u], ws.compact_index[v]);
    }
    const WeightSelection selection =
        select_weight_matrix(sub, config.optimizer);
    for (std::size_t a = 0; a < nodes.size(); ++a) {
      for (std::size_t b = 0; b < nodes.size(); ++b) {
        dense(nodes[a], nodes[b]) = selection.w(a, b);
      }
    }
  }
  return SparseWeightMatrix::from_dense(dense, ws.graph);
}

SparsifierResult sparsify_impl(const topology::Graph& graph,
                               const std::vector<bool>& alive,
                               const std::vector<std::size_t>& labels_in,
                               const SparsifierConfig& config) {
  const Workspace ws = build_workspace(graph, alive, labels_in);
  const auto& edges = graph.edges();

  SparsifierResult result;
  result.edge_kept.assign(edges.size(), 1);

  const std::vector<double> prices = effective_prices(ws, config);
  std::vector<std::uint8_t> candidate(edges.size(), 0);
  double kept_cost = 0.0;
  std::size_t effective_edges = 0;
  for (std::size_t c = 0; c < ws.component_count; ++c) {
    for (const std::size_t e : ws.comp_edges[c]) {
      candidate[e] = 1;
      kept_cost += prices[e];
      ++effective_edges;
    }
  }
  result.cost_before = kept_cost;

  std::vector<double> comp_slem(ws.component_count, 0.0);
  for (std::size_t c = 0; c < ws.component_count; ++c) {
    comp_slem[c] = component_slem(ws, result.edge_kept, c, kExcluded);
  }
  const auto max_slem = [&] {
    double worst = 0.0;
    for (const double s : comp_slem) worst = std::max(worst, s);
    return worst;
  };
  result.slem_before = max_slem();

  // "Degrade by at most slem_slack" tightens an absolute bound that the
  // starting topology may already sit above; without slack the bound is
  // absolute. The comparison below is exact — the property test asserts
  // the post-prune SLEM never exceeds this number.
  const double bound = config.slem_slack > 0.0
                           ? std::min(config.slem_bound,
                                      result.slem_before + config.slem_slack)
                           : config.slem_bound;

  while (true) {
    if (config.cost_budget > 0.0 &&
        kept_cost <= config.cost_budget * result.cost_before) {
      break;  // saved enough; keep the remaining mixing quality
    }
    std::size_t best = kExcluded;
    double best_score = 0.0;
    double best_slem = 0.0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (candidate[e] == 0 || result.edge_kept[e] == 0) continue;
      const std::size_t c = ws.labels[edges[e].first];
      if (!stays_connected(ws, result.edge_kept, c, e)) continue;
      const double slem = component_slem(ws, result.edge_kept, c, e);
      if (slem > bound) continue;
      const double degradation =
          std::max(slem - comp_slem[c], kMinDegradation);
      const double score = prices[e] / degradation;
      // Strict > keeps the tiebreak on the lowest edge index, so the
      // schedule is independent of evaluation order.
      if (best == kExcluded || score > best_score) {
        best = e;
        best_score = score;
        best_slem = slem;
      }
    }
    if (best == kExcluded) break;  // every survivor is load-bearing
    result.edge_kept[best] = 0;
    kept_cost -= prices[best];
    --effective_edges;
    comp_slem[ws.labels[edges[best].first]] = best_slem;
    result.steps.push_back(PruneStep{edges[best].first, edges[best].second,
                                     prices[best], max_slem(), kept_cost});
  }

  result.slem_after = result.steps.empty() ? result.slem_before
                                           : result.steps.back().slem_after;
  result.cost_after = kept_cost;
  result.links_pruned = result.steps.size();
  result.effective_edges = effective_edges;
  result.w =
      reweight_survivors(ws, alive, labels_in, result.edge_kept, config);
  return result;
}

}  // namespace

std::vector<double> link_prices(const topology::Graph& graph,
                                LinkCostModel model) {
  const Workspace ws = build_workspace(graph, {}, {});
  SparsifierConfig config;
  config.cost_model = model;
  return effective_prices(ws, config);
}

SparsifierResult sparsify_topology(const topology::Graph& graph,
                                   const std::vector<bool>& alive,
                                   const SparsifierConfig& config) {
  return sparsify_impl(graph, alive, {}, config);
}

SparsifierResult sparsify_topology(const topology::Graph& graph,
                                   const std::vector<bool>& alive,
                                   const std::vector<std::size_t>& labels,
                                   const SparsifierConfig& config) {
  return sparsify_impl(graph, alive, labels, config);
}

}  // namespace snap::consensus

// Mixing ("weight") matrix utilities for the EXTRA iteration.
//
// A feasible mixing matrix W for topology G must be symmetric, doubly
// stochastic, and supported on G: w_ij ≠ 0 only when j ∈ B_i or j == i
// (paper §IV-A). W̃ = (W + I)/2 is the second matrix in recursion (6).
#pragma once

#include "consensus/sparse_weight_matrix.hpp"
#include "linalg/matrix.hpp"
#include "topology/graph.hpp"

namespace snap::consensus {

/// Max-degree initialization, paper eq. (24):
///   w_ij = 1 / (max{deg(i), deg(j)} + ε)  for j ∈ B_i,
///   w_ij = 0                              for j ∉ B_i, i ≠ j,
///   w_ii = 1 − Σ_{j≠i} w_ij.
/// The result is symmetric and doubly stochastic for every graph and any
/// ε > 0.
linalg::Matrix max_degree_weights(const topology::Graph& graph,
                                  double epsilon = 0.01);

/// W̃ = (W + I) / 2 (paper eq. (7)).
linalg::Matrix w_tilde(const linalg::Matrix& w);

/// True when `w` is a feasible mixing matrix for `graph`: square of the
/// right size, symmetric, doubly stochastic (entrywise ≥ −tol), and
/// supported on the graph's edges plus the diagonal.
bool is_feasible_weight_matrix(const linalg::Matrix& w,
                               const topology::Graph& graph,
                               double tol = 1e-8);

/// Convergence-rate surrogate used to pick between candidate matrices.
///
/// Paper eq. (17): the linear rate bound grows with
/// λ̄_min(I−W) = 1 − λ̄_max(W) and needs λ_min(W) bounded away from −1
/// (EXTRA's W̃ = (W+I)/2 must stay positive definite for a usable step
/// size). Empirically the spectral gap dominates once λ_min clears a
/// safety margin, so candidates are scored as
///   score(W) = (1 − λ̄_max(W)) · min(1, (1 + λ_min(W)) / 0.2),
/// i.e. full credit for the gap when λ_min ≥ −0.8, linear discount
/// toward the periodic limit λ_min → −1, zero at exactly −1. The engine
/// then "implement[s] the solution that can result in the larger
/// convergence rate" (§IV-B).
///
/// Both overloads consume only λ̄_max and λ_min, routed through
/// mixing_extremes: the dense Jacobi oracle up to
/// kDenseSpectralCutoff (score values bitwise-unchanged at small n),
/// deflated Lanczos above it — never a full spectrum.
double convergence_score(const linalg::Matrix& w);
double convergence_score(const SparseWeightMatrix& w);

}  // namespace snap::consensus

#include "consensus/weight_reprojection.hpp"

#include <algorithm>
#include <cstddef>

#include "common/check.hpp"

namespace snap::consensus {

namespace {

/// Metropolis–Hastings weights on the alive-induced subgraph, embedded
/// into the full n×n index space with identity rows for dead nodes.
linalg::Matrix metropolis_on_survivors(const topology::Graph& graph,
                                       const std::vector<bool>& alive) {
  const std::size_t n = graph.node_count();
  std::vector<std::size_t> alive_degree(n, 0);
  for (const auto& [u, v] : graph.edges()) {
    if (alive[u] && alive[v]) {
      ++alive_degree[u];
      ++alive_degree[v];
    }
  }
  linalg::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) {
      w(i, i) = 1.0;
      continue;
    }
    double off_diagonal = 0.0;
    for (const topology::NodeId j : graph.neighbors(i)) {
      if (!alive[j]) continue;
      const double weight =
          1.0 / (1.0 + static_cast<double>(
                           std::max(alive_degree[i], alive_degree[j])));
      w(i, j) = weight;
      off_diagonal += weight;
    }
    w(i, i) = 1.0 - off_diagonal;
  }
  return w;
}

}  // namespace

linalg::Matrix reproject_weight_matrix(const topology::Graph& graph,
                                       const std::vector<bool>& alive,
                                       ReprojectionMethod method,
                                       const WeightOptimizerConfig& optimizer) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(alive.size() == n, "alive mask must have one flag per node");
  const std::size_t alive_count =
      static_cast<std::size_t>(std::count(alive.begin(), alive.end(), true));
  SNAP_REQUIRE_MSG(alive_count >= 1, "cannot re-project with no survivors");

  if (method == ReprojectionMethod::kOptimize && alive_count >= 2) {
    // Build the compact survivor subgraph, optimize there, embed back.
    std::vector<std::size_t> compact(n, 0);
    std::vector<topology::NodeId> expand;
    expand.reserve(alive_count);
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i]) {
        compact[i] = expand.size();
        expand.push_back(i);
      }
    }
    topology::Graph survivors(alive_count);
    for (const auto& [u, v] : graph.edges()) {
      if (alive[u] && alive[v]) survivors.add_edge(compact[u], compact[v]);
    }
    const WeightSelection selection =
        select_weight_matrix(survivors, optimizer);
    linalg::Matrix w = linalg::Matrix::identity(n);
    for (std::size_t a = 0; a < alive_count; ++a) {
      w(expand[a], expand[a]) = selection.w(a, a);
      for (std::size_t b = 0; b < alive_count; ++b) {
        if (a == b) continue;
        w(expand[a], expand[b]) = selection.w(a, b);
      }
    }
    return w;
  }

  return metropolis_on_survivors(graph, alive);
}

SparseWeightMatrix reproject_weight_matrix_sparse(
    const topology::Graph& graph, const std::vector<bool>& alive,
    ReprojectionMethod method, const WeightOptimizerConfig& optimizer) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(alive.size() == n, "alive mask must have one flag per node");
  const std::size_t alive_count =
      static_cast<std::size_t>(std::count(alive.begin(), alive.end(), true));
  SNAP_REQUIRE_MSG(alive_count >= 1, "cannot re-project with no survivors");

  if (method == ReprojectionMethod::kOptimize && alive_count >= 2) {
    // The optimizer works in dense edge-weight coordinates; reuse the
    // dense embed-back and restrict onto the support. Same doubles as
    // the dense path by construction.
    return SparseWeightMatrix::from_dense(
        reproject_weight_matrix(graph, alive, method, optimizer), graph);
  }

  return SparseWeightMatrix::metropolis_on_survivors(graph, alive);
}

}  // namespace snap::consensus

#include "consensus/weight_reprojection.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/check.hpp"

namespace snap::consensus {

namespace {

/// Metropolis–Hastings weights on the alive-induced subgraph, embedded
/// into the full n×n index space with identity rows for dead nodes.
linalg::Matrix metropolis_on_survivors(const topology::Graph& graph,
                                       const std::vector<bool>& alive) {
  const std::size_t n = graph.node_count();
  std::vector<std::size_t> alive_degree(n, 0);
  for (const auto& [u, v] : graph.edges()) {
    if (alive[u] && alive[v]) {
      ++alive_degree[u];
      ++alive_degree[v];
    }
  }
  linalg::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) {
      w(i, i) = 1.0;
      continue;
    }
    double off_diagonal = 0.0;
    for (const topology::NodeId j : graph.neighbors(i)) {
      if (!alive[j]) continue;
      const double weight =
          1.0 / (1.0 + static_cast<double>(
                           std::max(alive_degree[i], alive_degree[j])));
      w(i, j) = weight;
      off_diagonal += weight;
    }
    w(i, i) = 1.0 - off_diagonal;
  }
  return w;
}

constexpr std::size_t kExcluded = topology::ComponentMap::kExcluded;

/// Dense component-aware Metropolis: metropolis_on_survivors with the
/// aliveness test extended by label equality — identical doubles and
/// accumulation order when the labeling is a single component.
linalg::Matrix metropolis_on_components(
    const topology::Graph& graph, const std::vector<bool>& alive,
    const std::vector<std::size_t>& labels) {
  const std::size_t n = graph.node_count();
  const auto effective = [&](topology::NodeId i) {
    return alive[i] && labels[i] != kExcluded;
  };
  std::vector<std::size_t> alive_degree(n, 0);
  for (const auto& [u, v] : graph.edges()) {
    if (effective(u) && effective(v) && labels[u] == labels[v]) {
      ++alive_degree[u];
      ++alive_degree[v];
    }
  }
  linalg::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!effective(i)) {
      w(i, i) = 1.0;
      continue;
    }
    double off_diagonal = 0.0;
    for (const topology::NodeId j : graph.neighbors(i)) {
      if (!effective(j) || labels[j] != labels[i]) continue;
      const double weight =
          1.0 / (1.0 + static_cast<double>(
                           std::max(alive_degree[i], alive_degree[j])));
      w(i, j) = weight;
      off_diagonal += weight;
    }
    w(i, i) = 1.0 - off_diagonal;
  }
  return w;
}

}  // namespace

linalg::Matrix reproject_weight_matrix(const topology::Graph& graph,
                                       const std::vector<bool>& alive,
                                       ReprojectionMethod method,
                                       const WeightOptimizerConfig& optimizer) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(alive.size() == n, "alive mask must have one flag per node");
  const std::size_t alive_count =
      static_cast<std::size_t>(std::count(alive.begin(), alive.end(), true));
  SNAP_REQUIRE_MSG(alive_count >= 1, "cannot re-project with no survivors");

  if (method == ReprojectionMethod::kOptimize && alive_count >= 2) {
    // Crashes can disconnect the survivor-induced subgraph, and the
    // §IV-B optimizer refuses disconnected input (the SLEM objective is
    // ill-posed there). Label the survivor components and solve one
    // optimization per block — with a connected survivor set this is
    // exactly one solve over the whole survivor subgraph.
    std::vector<std::uint8_t> include(n, 0);
    for (std::size_t i = 0; i < n; ++i) include[i] = alive[i] ? 1 : 0;
    const topology::ComponentMap components =
        topology::connected_components(graph, include);
    return reproject_weight_matrix(graph, alive, components.label, method,
                                   optimizer);
  }

  return metropolis_on_survivors(graph, alive);
}

SparseWeightMatrix reproject_weight_matrix_sparse(
    const topology::Graph& graph, const std::vector<bool>& alive,
    ReprojectionMethod method, const WeightOptimizerConfig& optimizer) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(alive.size() == n, "alive mask must have one flag per node");
  const std::size_t alive_count =
      static_cast<std::size_t>(std::count(alive.begin(), alive.end(), true));
  SNAP_REQUIRE_MSG(alive_count >= 1, "cannot re-project with no survivors");

  if (method == ReprojectionMethod::kOptimize && alive_count >= 2) {
    // The optimizer works in dense edge-weight coordinates; reuse the
    // dense embed-back and restrict onto the support. Same doubles as
    // the dense path by construction.
    return SparseWeightMatrix::from_dense(
        reproject_weight_matrix(graph, alive, method, optimizer), graph);
  }

  return SparseWeightMatrix::metropolis_on_survivors(graph, alive);
}

linalg::Matrix reproject_weight_matrix(
    const topology::Graph& graph, const std::vector<bool>& alive,
    const std::vector<std::size_t>& labels, ReprojectionMethod method,
    const WeightOptimizerConfig& optimizer) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(alive.size() == n, "alive mask must have one flag per node");
  SNAP_REQUIRE_MSG(labels.size() == n,
                   "component labels must have one entry per node");
  const std::size_t alive_count =
      static_cast<std::size_t>(std::count(alive.begin(), alive.end(), true));
  SNAP_REQUIRE_MSG(alive_count >= 1, "cannot re-project with no survivors");

  if (method == ReprojectionMethod::kOptimize) {
    // One §IV-B solve per block, embedded into identity. Blocks are
    // visited in ascending label order; each block's subgraph is
    // connected by construction of the labeling, which is what keeps
    // the optimizer's SLEM objective well-posed (satellite of the
    // partition-tolerance work: the optimizer refuses disconnected
    // input instead of chasing an infeasible bound).
    std::size_t label_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (alive[i] && labels[i] != kExcluded) {
        label_count = std::max(label_count, labels[i] + 1);
      }
    }
    linalg::Matrix w = linalg::Matrix::identity(n);
    for (std::size_t c = 0; c < label_count; ++c) {
      std::vector<std::size_t> compact(n, 0);
      std::vector<topology::NodeId> expand;
      for (std::size_t i = 0; i < n; ++i) {
        if (alive[i] && labels[i] == c) {
          compact[i] = expand.size();
          expand.push_back(i);
        }
      }
      if (expand.size() < 2) continue;  // singleton: identity row stays
      topology::Graph block(expand.size());
      for (const auto& [u, v] : graph.edges()) {
        if (alive[u] && alive[v] && labels[u] == c && labels[v] == c) {
          block.add_edge(compact[u], compact[v]);
        }
      }
      const WeightSelection selection = select_weight_matrix(block, optimizer);
      for (std::size_t a = 0; a < expand.size(); ++a) {
        for (std::size_t b = 0; b < expand.size(); ++b) {
          w(expand[a], expand[b]) = selection.w(a, b);
        }
      }
    }
    return w;
  }

  return metropolis_on_components(graph, alive, labels);
}

SparseWeightMatrix reproject_weight_matrix_sparse(
    const topology::Graph& graph, const std::vector<bool>& alive,
    const std::vector<std::size_t>& labels, ReprojectionMethod method,
    const WeightOptimizerConfig& optimizer) {
  const std::size_t n = graph.node_count();
  SNAP_REQUIRE_MSG(alive.size() == n, "alive mask must have one flag per node");
  SNAP_REQUIRE_MSG(labels.size() == n,
                   "component labels must have one entry per node");

  if (method == ReprojectionMethod::kOptimize) {
    return SparseWeightMatrix::from_dense(
        reproject_weight_matrix(graph, alive, labels, method, optimizer),
        graph);
  }

  return SparseWeightMatrix::metropolis_on_components(graph, alive, labels);
}

}  // namespace snap::consensus

#include "consensus/mixing_spectrum.hpp"

#include <cmath>

#include "common/check.hpp"
#include "linalg/lanczos.hpp"

namespace snap::consensus {

namespace {

linalg::MatVec dense_matvec(const linalg::Matrix& w) {
  return [&w](std::span<const double> x, std::span<double> y) {
    const std::size_t n = w.rows();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = y[i];
      const auto row = w.row(i);
      for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
      y[i] = acc;
    }
  };
}

linalg::MatVec sparse_matvec(const SparseWeightMatrix& w) {
  return [&w](std::span<const double> x, std::span<double> y) {
    w.accumulate_matvec(x, y);
  };
}

void stamp_one_multiplicity(MixingExtremes& out) {
  out.one_repeated = out.lambda_bar_max >= 1.0 - kOneMultiplicityTol;
}

// Dense oracle: λ̄_max is defined as the largest eigenvalue *strictly
// below* 1, so a repeated eigenvalue 1 never shows up in it — count the
// multiplicity from the full spectrum instead. (The Lanczos leg deflates
// only the global ones-vector, so there a second eigenvalue 1 survives
// as λ̄_max = 1 and stamp_one_multiplicity sees it.)
MixingExtremes from_jacobi(const linalg::Matrix& w) {
  const linalg::Vector evals = linalg::eigenvalues_symmetric(w);
  const linalg::SpectralSummary summary = linalg::spectral_summary(evals);
  MixingExtremes out{summary.lambda_bar_max, summary.lambda_min,
                     summary.slem};
  std::size_t at_one = 0;
  for (std::size_t i = 0; i < evals.size(); ++i) {
    if (evals[i] >= 1.0 - kOneMultiplicityTol) ++at_one;
  }
  out.one_repeated = at_one >= 2;
  return out;
}

MixingExtremes from_lanczos(std::size_t n, const linalg::MatVec& apply) {
  linalg::LanczosOptions options;
  const linalg::DeflatedExtremes extremes =
      linalg::lanczos_mixing_extremes(n, apply, options);
  SNAP_REQUIRE_MSG(extremes.converged,
                  "Lanczos did not converge in " << extremes.iterations
                                                 << " iterations");
  MixingExtremes out;
  out.lambda_bar_max = extremes.lambda_bar_max;
  out.lambda_min = extremes.lambda_min;
  out.slem = std::max(std::abs(out.lambda_bar_max), std::abs(out.lambda_min));
  stamp_one_multiplicity(out);
  return out;
}

MixingExtremes require_ergodic(MixingExtremes extremes) {
  if (extremes.one_repeated) {
    throw DisconnectedMixingError(
        "mixing matrix has a repeated eigenvalue 1 (lambda_bar_max = " +
        std::to_string(extremes.lambda_bar_max) +
        "): disconnected support — run per-component consensus instead");
  }
  return extremes;
}

}  // namespace

MixingExtremes mixing_extremes(const linalg::Matrix& w) {
  SNAP_REQUIRE(w.is_square() && w.rows() >= 1);
  if (w.rows() <= kDenseSpectralCutoff) return from_jacobi(w);
  return from_lanczos(w.rows(), dense_matvec(w));
}

MixingExtremes mixing_extremes(const SparseWeightMatrix& w) {
  const std::size_t n = w.node_count();
  SNAP_REQUIRE(n >= 1);
  if (n <= kDenseSpectralCutoff) return from_jacobi(w.to_dense());
  return from_lanczos(n, sparse_matvec(w));
}

MixingExtremes ergodic_mixing_extremes(const linalg::Matrix& w) {
  return require_ergodic(mixing_extremes(w));
}

MixingExtremes ergodic_mixing_extremes(const SparseWeightMatrix& w) {
  return require_ergodic(mixing_extremes(w));
}

linalg::SpectralSummary spectral_summary(const SparseWeightMatrix& w) {
  const MixingExtremes extremes = mixing_extremes(w);
  linalg::SpectralSummary summary;
  summary.lambda_max = 1.0;  // structural for a doubly-stochastic W
  summary.lambda_min = extremes.lambda_min;
  summary.lambda_bar_max = extremes.lambda_bar_max;
  summary.lambda_bar_min = 0.0;  // interior — unavailable, see header
  summary.slem = extremes.slem;
  return summary;
}

MixingEigenpairs mixing_eigenpairs(const linalg::Matrix& w,
                                   double cluster_tol) {
  SNAP_REQUIRE(w.is_square() && w.rows() >= 2);
  SNAP_REQUIRE(cluster_tol > 0.0);
  const std::size_t n = w.rows();
  MixingEigenpairs out;

  if (n <= kDenseSpectralCutoff) {
    // Dense oracle: identical decomposition, identical cluster scans,
    // identical eigenvector columns to the historical full-spectrum
    // objective — subgradient trajectories at small n are bitwise
    // unchanged.
    const linalg::EigenDecomposition eig = linalg::eigen_symmetric(w);
    const double top = eig.values[n - 2];
    std::size_t top_from = n - 2;
    while (top_from > 0 && top - eig.values[top_from - 1] <= cluster_tol) {
      --top_from;
    }
    std::size_t bottom_count = 1;
    while (bottom_count < n &&
           eig.values[bottom_count] - eig.values[0] <= cluster_tol) {
      ++bottom_count;
    }
    const std::size_t top_count = n - 1 - top_from;
    out.top_values.resize(top_count);
    out.top_vectors = linalg::Matrix(n, top_count);
    for (std::size_t c = 0; c < top_count; ++c) {
      out.top_values[c] = eig.values[top_from + c];
      for (std::size_t r = 0; r < n; ++r) {
        out.top_vectors(r, c) = eig.vectors(r, top_from + c);
      }
    }
    out.bottom_values.resize(bottom_count);
    out.bottom_vectors = linalg::Matrix(n, bottom_count);
    for (std::size_t c = 0; c < bottom_count; ++c) {
      out.bottom_values[c] = eig.values[c];
      for (std::size_t r = 0; r < n; ++r) {
        out.bottom_vectors(r, c) = eig.vectors(r, c);
      }
    }
    return out;
  }

  linalg::LanczosOptions options;
  options.cluster_tol = cluster_tol;
  const linalg::DeflatedExtremes extremes =
      linalg::lanczos_mixing_extremes(n, dense_matvec(w), options);
  SNAP_REQUIRE_MSG(extremes.converged,
                  "Lanczos did not converge in " << extremes.iterations
                                                 << " iterations");
  out.top_values = extremes.top_values;
  out.top_vectors = extremes.top_vectors;
  out.bottom_values = extremes.bottom_values;
  out.bottom_vectors = extremes.bottom_vectors;
  return out;
}

}  // namespace snap::consensus

// Weight-matrix re-projection under churn.
//
// EXTRA's convergence needs a symmetric doubly-stochastic W supported on
// the topology — and when a node is confirmed crashed, the *effective*
// topology is the alive-induced subgraph. Keeping the old W would make
// every surviving neighbor of the dead node anchor part of its average
// to a frozen iterate forever; re-projecting W onto the surviving
// sparsity pattern and restarting the recursion from the current
// iterates lets SNAP degrade to the reduced topology instead of
// diverging ("the convergence and optimality of iteration (6) has
// nothing to do with the initial parameter values", §IV-C).
//
// Dead nodes keep an identity row/column, so the full n×n matrix stays
// symmetric doubly stochastic and feasible for the original graph while
// the alive block mixes only over surviving links.
#pragma once

#include <vector>

#include "consensus/sparse_weight_matrix.hpp"
#include "consensus/weight_optimizer.hpp"
#include "linalg/matrix.hpp"
#include "topology/graph.hpp"

namespace snap::consensus {

/// How the surviving block is re-weighted.
enum class ReprojectionMethod {
  /// Metropolis–Hastings weights over surviving links:
  ///   w_ij = 1 / (1 + max{deg'(i), deg'(j)}),  deg' = alive degree.
  /// Symmetric, doubly stochastic, O(|E|) — the cheap in-run fallback.
  kMetropolis,
  /// Re-run the §IV-B weight optimizer on the surviving subgraph
  /// (select_weight_matrix). Better spectral gap, much more compute;
  /// falls back to Metropolis when fewer than two nodes survive.
  kOptimize,
};

/// Re-projects a mixing matrix onto the alive-induced subgraph of
/// `graph`. `alive` has one flag per node; dead rows/columns become
/// identity. The result is symmetric, doubly stochastic, and supported
/// on the surviving edges — feasible for `graph` by construction
/// (is_feasible_weight_matrix holds). Requires at least one alive node.
linalg::Matrix reproject_weight_matrix(
    const topology::Graph& graph, const std::vector<bool>& alive,
    ReprojectionMethod method = ReprojectionMethod::kMetropolis,
    const WeightOptimizerConfig& optimizer = {});

/// Sparse re-projection — the in-run path the trainers take. The
/// kMetropolis leg builds the surviving block directly in CSR form with
/// the dense builder's arithmetic (same doubles, same order, O(|E|));
/// the kOptimize leg runs the §IV-B optimizer on the compacted survivor
/// subgraph — a dense solve, which is why churn-time optimization stays
/// a small-n configuration — and restricts the winner onto the support.
SparseWeightMatrix reproject_weight_matrix_sparse(
    const topology::Graph& graph, const std::vector<bool>& alive,
    ReprojectionMethod method = ReprojectionMethod::kMetropolis,
    const WeightOptimizerConfig& optimizer = {});

/// Component-aware re-projection: builds a block-diagonal W over the
/// effective components of a partitioned run. `labels` is a per-node
/// component labeling (topology::ComponentMap::kExcluded for nodes
/// outside the effective graph); an edge survives only when both
/// endpoints are alive and share a label. kMetropolis weighs each block
/// by within-block degrees; kOptimize runs the §IV-B optimizer once per
/// block of >= 2 nodes (each block is connected by construction of the
/// labeling, so the optimizer's connectivity precondition holds).
/// Singleton blocks and excluded/dead nodes carry identity rows. With
/// every alive node in one component the result is bitwise identical to
/// the non-component overloads above.
linalg::Matrix reproject_weight_matrix(
    const topology::Graph& graph, const std::vector<bool>& alive,
    const std::vector<std::size_t>& labels,
    ReprojectionMethod method = ReprojectionMethod::kMetropolis,
    const WeightOptimizerConfig& optimizer = {});

/// Sparse twin of the component-aware overload (same doubles, same
/// accumulation order as the dense build restricted to the support).
SparseWeightMatrix reproject_weight_matrix_sparse(
    const topology::Graph& graph, const std::vector<bool>& alive,
    const std::vector<std::size_t>& labels,
    ReprojectionMethod method = ReprojectionMethod::kMetropolis,
    const WeightOptimizerConfig& optimizer = {});

}  // namespace snap::consensus

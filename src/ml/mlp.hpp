// Three-layer fully connected neural network.
//
// This is the paper's testbed model: 784 inputs, a hidden layer of 30
// "perceptrons" (sigmoid), 10 softmax outputs, cross-entropy loss —
// ~23.9k parameters. Flat layout:
//   [W1 (hidden × in, row-major) | b1 (hidden) |
//    W2 (out × hidden, row-major) | b2 (out)]
// The gradient is exact backprop over the full provided dataset (EXTRA
// uses deterministic local gradients); stochastic trainers pass a
// mini-batch subset instead.
#pragma once

#include <cstddef>

#include "ml/model.hpp"

namespace snap::ml {

struct MlpConfig {
  std::size_t input_dim = 784;
  std::size_t hidden_dim = 30;
  std::size_t output_dim = 10;
  /// L2 strength on both weight matrices. The paper's "conventional"
  /// 3-layer network carries no weight decay, and Fig. 2's unchanged
  /// parameters (weights of always-zero input pixels) exist only when
  /// their gradients are exactly zero — so 0 is the faithful default.
  double l2 = 0.0;
  /// Weight init stddev is init_scale / sqrt(fan_in) (Xavier-style).
  double init_scale = 1.0;
};

class Mlp final : public Model {
 public:
  explicit Mlp(const MlpConfig& config);

  std::size_t param_count() const noexcept override;
  std::string name() const override;

  double loss(const linalg::Vector& params,
              const data::Dataset& data) const override;
  LossGradient loss_gradient(const linalg::Vector& params,
                             const data::Dataset& data) const override;
  std::size_t predict(const linalg::Vector& params,
                      std::span<const double> features) const override;
  linalg::Vector initial_params(common::Rng& rng) const override;

  const MlpConfig& config() const noexcept { return config_; }

  // Flat-layout offsets (exposed for tests).
  std::size_t w1_offset() const noexcept { return 0; }
  std::size_t b1_offset() const noexcept {
    return config_.hidden_dim * config_.input_dim;
  }
  std::size_t w2_offset() const noexcept {
    return b1_offset() + config_.hidden_dim;
  }
  std::size_t b2_offset() const noexcept {
    return w2_offset() + config_.output_dim * config_.hidden_dim;
  }

 private:
  /// Forward pass for one sample; fills hidden activations and output
  /// probabilities. Returns the cross-entropy of `label` (ignored when
  /// label == SIZE_MAX).
  double forward(const linalg::Vector& params,
                 std::span<const double> features, std::size_t label,
                 std::span<double> hidden, std::span<double> probs) const;

  MlpConfig config_;
};

}  // namespace snap::ml

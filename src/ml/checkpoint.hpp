// Model checkpointing: save/load a flat parameter vector with a small
// self-describing header, so a trained edge model can be persisted and
// shipped (e.g. to newly joining edge servers).
//
// Format (little-endian):
//   magic "SNAPCKPT" (8 bytes) | version u32 | name length u32 |
//   model name bytes | param count u64 | params f64 × count |
//   checksum u64 (FNV-1a over everything before it)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "linalg/vector.hpp"

namespace snap::ml {

/// FNV-1a 64-bit hash over a byte span — the checksum primitive shared
/// by the model checkpoint format and runtime::RunCheckpoint.
std::uint64_t fnv1a(std::span<const std::byte> bytes);

struct Checkpoint {
  std::string model_name;  ///< e.g. "mlp-784-30-10" — matched on load
  linalg::Vector params;
};

/// Serializes a checkpoint to bytes.
std::vector<std::byte> encode_checkpoint(const Checkpoint& checkpoint);

/// Parses bytes produced by encode_checkpoint. Returns nullopt on a
/// malformed buffer, wrong magic/version, or checksum mismatch.
std::optional<Checkpoint> decode_checkpoint(
    std::span<const std::byte> bytes);

/// Writes a checkpoint to `path`. Returns false on I/O failure.
bool save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Reads a checkpoint from `path`. Returns nullopt on I/O failure or a
/// malformed file.
std::optional<Checkpoint> load_checkpoint(const std::string& path);

}  // namespace snap::ml

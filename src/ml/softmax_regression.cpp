#include "ml/softmax_regression.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace snap::ml {

void softmax_inplace(std::span<double> logits) {
  double max_logit = logits[0];
  for (const double l : logits) max_logit = std::max(max_logit, l);
  double sum = 0.0;
  for (double& l : logits) {
    l = std::exp(l - max_logit);
    sum += l;
  }
  for (double& l : logits) l /= sum;
}

SoftmaxRegression::SoftmaxRegression(const SoftmaxRegressionConfig& config)
    : config_(config) {
  SNAP_REQUIRE(config.feature_dim >= 1);
  SNAP_REQUIRE(config.num_classes >= 2);
  SNAP_REQUIRE(config.l2 >= 0.0);
}

std::string SoftmaxRegression::name() const {
  std::ostringstream os;
  os << "softmax-" << config_.feature_dim << "x" << config_.num_classes;
  return os.str();
}

void SoftmaxRegression::logits_for(const linalg::Vector& params,
                                   std::span<const double> features,
                                   std::span<double> logits) const {
  const std::size_t d = config_.feature_dim;
  for (std::size_t c = 0; c < config_.num_classes; ++c) {
    double acc = params[weight_count() + c];  // bias
    const std::size_t row = c * d;
    for (std::size_t i = 0; i < d; ++i) {
      acc += params[row + i] * features[i];
    }
    logits[c] = acc;
  }
}

double SoftmaxRegression::loss(const linalg::Vector& params,
                               const data::Dataset& data) const {
  SNAP_REQUIRE(params.size() == param_count());
  SNAP_REQUIRE(data.feature_dim() == config_.feature_dim);
  std::vector<double> logits(config_.num_classes);
  double acc = 0.0;
  for (std::size_t s = 0; s < data.size(); ++s) {
    logits_for(params, data.features(s), logits);
    softmax_inplace(logits);
    acc -= std::log(std::max(logits[data.label(s)], 1e-300));
  }
  const double mean =
      data.empty() ? 0.0 : acc / static_cast<double>(data.size());
  double reg = 0.0;
  for (std::size_t i = 0; i < weight_count(); ++i) {
    reg += params[i] * params[i];
  }
  return mean + 0.5 * config_.l2 * reg;
}

LossGradient SoftmaxRegression::loss_gradient(
    const linalg::Vector& params, const data::Dataset& data) const {
  SNAP_REQUIRE(params.size() == param_count());
  SNAP_REQUIRE(data.feature_dim() == config_.feature_dim);
  LossGradient out;
  out.gradient = linalg::Vector(param_count());
  std::vector<double> logits(config_.num_classes);
  const std::size_t d = config_.feature_dim;
  double loss_acc = 0.0;

  for (std::size_t s = 0; s < data.size(); ++s) {
    const auto x = data.features(s);
    logits_for(params, x, logits);
    softmax_inplace(logits);
    loss_acc -= std::log(std::max(logits[data.label(s)], 1e-300));
    for (std::size_t c = 0; c < config_.num_classes; ++c) {
      // ∂ℓ/∂logit_c = p_c − 1{c == label}
      const double delta =
          logits[c] - (c == data.label(s) ? 1.0 : 0.0);
      const std::size_t row = c * d;
      for (std::size_t i = 0; i < d; ++i) {
        out.gradient[row + i] += delta * x[i];
      }
      out.gradient[weight_count() + c] += delta;
    }
  }

  if (!data.empty()) {
    const double inv = 1.0 / static_cast<double>(data.size());
    out.gradient *= inv;
    loss_acc *= inv;
  }

  double reg = 0.0;
  for (std::size_t i = 0; i < weight_count(); ++i) {
    out.gradient[i] += config_.l2 * params[i];
    reg += params[i] * params[i];
  }
  out.loss = loss_acc + 0.5 * config_.l2 * reg;
  return out;
}

std::size_t SoftmaxRegression::predict(
    const linalg::Vector& params, std::span<const double> features) const {
  SNAP_REQUIRE(params.size() == param_count());
  SNAP_REQUIRE(features.size() == config_.feature_dim);
  std::vector<double> logits(config_.num_classes);
  logits_for(params, features, logits);
  return static_cast<std::size_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

linalg::Vector SoftmaxRegression::initial_params(common::Rng& rng) const {
  linalg::Vector params(param_count());
  for (std::size_t i = 0; i < weight_count(); ++i) {
    params[i] = rng.normal(0.0, config_.init_scale);
  }
  return params;
}

}  // namespace snap::ml

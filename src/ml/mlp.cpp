#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "ml/softmax_regression.hpp"  // softmax_inplace

namespace snap::ml {

namespace {

double sigmoid(double z) noexcept { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Mlp::Mlp(const MlpConfig& config) : config_(config) {
  SNAP_REQUIRE(config.input_dim >= 1);
  SNAP_REQUIRE(config.hidden_dim >= 1);
  SNAP_REQUIRE(config.output_dim >= 2);
  SNAP_REQUIRE(config.l2 >= 0.0);
}

std::size_t Mlp::param_count() const noexcept {
  return config_.hidden_dim * config_.input_dim + config_.hidden_dim +
         config_.output_dim * config_.hidden_dim + config_.output_dim;
}

std::string Mlp::name() const {
  std::ostringstream os;
  os << "mlp-" << config_.input_dim << "-" << config_.hidden_dim << "-"
     << config_.output_dim;
  return os.str();
}

double Mlp::forward(const linalg::Vector& params,
                    std::span<const double> features, std::size_t label,
                    std::span<double> hidden,
                    std::span<double> probs) const {
  const std::size_t in = config_.input_dim;
  const std::size_t hid = config_.hidden_dim;
  const std::size_t out = config_.output_dim;
  const double* w1 = params.data() + w1_offset();
  const double* b1 = params.data() + b1_offset();
  const double* w2 = params.data() + w2_offset();
  const double* b2 = params.data() + b2_offset();

  for (std::size_t h = 0; h < hid; ++h) {
    double acc = b1[h];
    const double* row = w1 + h * in;
    for (std::size_t i = 0; i < in; ++i) acc += row[i] * features[i];
    hidden[h] = sigmoid(acc);
  }
  for (std::size_t o = 0; o < out; ++o) {
    double acc = b2[o];
    const double* row = w2 + o * hid;
    for (std::size_t h = 0; h < hid; ++h) acc += row[h] * hidden[h];
    probs[o] = acc;
  }
  softmax_inplace(probs);
  if (label == std::numeric_limits<std::size_t>::max()) return 0.0;
  return -std::log(std::max(probs[label], 1e-300));
}

double Mlp::loss(const linalg::Vector& params,
                 const data::Dataset& data) const {
  SNAP_REQUIRE(params.size() == param_count());
  SNAP_REQUIRE(data.feature_dim() == config_.input_dim);
  std::vector<double> hidden(config_.hidden_dim);
  std::vector<double> probs(config_.output_dim);
  double acc = 0.0;
  for (std::size_t s = 0; s < data.size(); ++s) {
    acc += forward(params, data.features(s), data.label(s), hidden, probs);
  }
  const double mean =
      data.empty() ? 0.0 : acc / static_cast<double>(data.size());

  double reg = 0.0;
  const std::size_t w1_count = config_.hidden_dim * config_.input_dim;
  const std::size_t w2_count = config_.output_dim * config_.hidden_dim;
  for (std::size_t i = 0; i < w1_count; ++i) {
    reg += params[w1_offset() + i] * params[w1_offset() + i];
  }
  for (std::size_t i = 0; i < w2_count; ++i) {
    reg += params[w2_offset() + i] * params[w2_offset() + i];
  }
  return mean + 0.5 * config_.l2 * reg;
}

LossGradient Mlp::loss_gradient(const linalg::Vector& params,
                                const data::Dataset& data) const {
  SNAP_REQUIRE(params.size() == param_count());
  SNAP_REQUIRE(data.feature_dim() == config_.input_dim);

  const std::size_t in = config_.input_dim;
  const std::size_t hid = config_.hidden_dim;
  const std::size_t out = config_.output_dim;
  const double* w2 = params.data() + w2_offset();

  LossGradient result;
  result.gradient = linalg::Vector(param_count());
  double* g_w1 = result.gradient.data() + w1_offset();
  double* g_b1 = result.gradient.data() + b1_offset();
  double* g_w2 = result.gradient.data() + w2_offset();
  double* g_b2 = result.gradient.data() + b2_offset();

  std::vector<double> hidden(hid);
  std::vector<double> probs(out);
  std::vector<double> delta_hidden(hid);
  double loss_acc = 0.0;

  for (std::size_t s = 0; s < data.size(); ++s) {
    const auto x = data.features(s);
    const std::size_t label = data.label(s);
    loss_acc += forward(params, x, label, hidden, probs);

    // Output layer: δ_o = p_o − 1{o == label}.
    for (std::size_t o = 0; o < out; ++o) {
      const double delta = probs[o] - (o == label ? 1.0 : 0.0);
      g_b2[o] += delta;
      double* g_row = g_w2 + o * hid;
      for (std::size_t h = 0; h < hid; ++h) {
        g_row[h] += delta * hidden[h];
      }
    }
    // Hidden layer: δ_h = σ'(z_h) Σ_o w2[o,h]·δ_o.
    for (std::size_t h = 0; h < hid; ++h) {
      double back = 0.0;
      for (std::size_t o = 0; o < out; ++o) {
        back += w2[o * hid + h] * (probs[o] - (o == label ? 1.0 : 0.0));
      }
      delta_hidden[h] = back * hidden[h] * (1.0 - hidden[h]);
    }
    for (std::size_t h = 0; h < hid; ++h) {
      const double dh = delta_hidden[h];
      if (dh == 0.0) continue;
      g_b1[h] += dh;
      double* g_row = g_w1 + h * in;
      for (std::size_t i = 0; i < in; ++i) {
        g_row[i] += dh * x[i];
      }
    }
  }

  if (!data.empty()) {
    const double inv = 1.0 / static_cast<double>(data.size());
    result.gradient *= inv;
    loss_acc *= inv;
  }

  // L2 on both weight matrices.
  double reg = 0.0;
  const std::size_t w1_count = hid * in;
  const std::size_t w2_count = out * hid;
  for (std::size_t i = 0; i < w1_count; ++i) {
    const double w = params[w1_offset() + i];
    result.gradient[w1_offset() + i] += config_.l2 * w;
    reg += w * w;
  }
  for (std::size_t i = 0; i < w2_count; ++i) {
    const double w = params[w2_offset() + i];
    result.gradient[w2_offset() + i] += config_.l2 * w;
    reg += w * w;
  }
  result.loss = loss_acc + 0.5 * config_.l2 * reg;
  return result;
}

std::size_t Mlp::predict(const linalg::Vector& params,
                         std::span<const double> features) const {
  SNAP_REQUIRE(params.size() == param_count());
  SNAP_REQUIRE(features.size() == config_.input_dim);
  std::vector<double> hidden(config_.hidden_dim);
  std::vector<double> probs(config_.output_dim);
  forward(params, features, std::numeric_limits<std::size_t>::max(), hidden,
          probs);
  return static_cast<std::size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

linalg::Vector Mlp::initial_params(common::Rng& rng) const {
  linalg::Vector params(param_count());
  const double w1_scale =
      config_.init_scale / std::sqrt(static_cast<double>(config_.input_dim));
  const double w2_scale =
      config_.init_scale / std::sqrt(static_cast<double>(config_.hidden_dim));
  const std::size_t w1_count = config_.hidden_dim * config_.input_dim;
  const std::size_t w2_count = config_.output_dim * config_.hidden_dim;
  for (std::size_t i = 0; i < w1_count; ++i) {
    params[w1_offset() + i] = rng.normal(0.0, w1_scale);
  }
  for (std::size_t i = 0; i < w2_count; ++i) {
    params[w2_offset() + i] = rng.normal(0.0, w2_scale);
  }
  return params;
}

}  // namespace snap::ml

// L2-regularized linear SVM with squared hinge loss.
//
// This is the 24-parameter model of the paper's large-scale simulations
// (§V-B). The squared hinge max(0, 1 − y·m)² is used instead of the
// plain hinge so the objective is differentiable (EXTRA's analysis
// assumes Lipschitz gradients), and the λ/2‖w‖² term makes it strongly
// convex — the regime in which the paper's linear convergence bound (11)
// applies. Labels are stored as {0, 1} in the Dataset and mapped to
// y ∈ {−1, +1} internally. The flat parameter layout is [w (dim), b].
#pragma once

#include <cstddef>

#include "ml/model.hpp"

namespace snap::ml {

struct LinearSvmConfig {
  std::size_t feature_dim = 24;
  /// L2 regularization strength λ (applied to w only, not the bias).
  /// The default gives the squared-hinge objective a strongly convex
  /// floor (condition number ~L/λ), which is the regime the paper's
  /// linear-rate bound (11) assumes.
  double l2 = 1e-2;
  /// Initial weight scale for initial_params.
  double init_scale = 0.01;
};

class LinearSvm final : public Model {
 public:
  explicit LinearSvm(const LinearSvmConfig& config);

  std::size_t param_count() const noexcept override {
    return config_.feature_dim + 1;
  }
  std::string name() const override;

  double loss(const linalg::Vector& params,
              const data::Dataset& data) const override;
  LossGradient loss_gradient(const linalg::Vector& params,
                             const data::Dataset& data) const override;
  std::size_t predict(const linalg::Vector& params,
                      std::span<const double> features) const override;
  linalg::Vector initial_params(common::Rng& rng) const override;

  const LinearSvmConfig& config() const noexcept { return config_; }

 private:
  /// Decision margin w·x + b.
  double margin(const linalg::Vector& params,
                std::span<const double> features) const;

  LinearSvmConfig config_;
};

}  // namespace snap::ml

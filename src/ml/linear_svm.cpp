#include "ml/linear_svm.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace snap::ml {

LinearSvm::LinearSvm(const LinearSvmConfig& config) : config_(config) {
  SNAP_REQUIRE(config.feature_dim >= 1);
  SNAP_REQUIRE(config.l2 >= 0.0);
}

std::string LinearSvm::name() const {
  std::ostringstream os;
  os << "linear-svm-" << config_.feature_dim;
  return os.str();
}

double LinearSvm::margin(const linalg::Vector& params,
                         std::span<const double> features) const {
  double m = params[config_.feature_dim];  // bias
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    m += params[i] * features[i];
  }
  return m;
}

double LinearSvm::loss(const linalg::Vector& params,
                       const data::Dataset& data) const {
  SNAP_REQUIRE(params.size() == param_count());
  SNAP_REQUIRE(data.feature_dim() == config_.feature_dim);
  double acc = 0.0;
  for (std::size_t s = 0; s < data.size(); ++s) {
    const double y = data.label(s) == 1 ? 1.0 : -1.0;
    const double slack = 1.0 - y * margin(params, data.features(s));
    if (slack > 0.0) acc += slack * slack;
  }
  const double mean =
      data.empty() ? 0.0 : acc / static_cast<double>(data.size());
  double reg = 0.0;
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    reg += params[i] * params[i];
  }
  return mean + 0.5 * config_.l2 * reg;
}

LossGradient LinearSvm::loss_gradient(const linalg::Vector& params,
                                      const data::Dataset& data) const {
  SNAP_REQUIRE(params.size() == param_count());
  SNAP_REQUIRE(data.feature_dim() == config_.feature_dim);
  LossGradient out;
  out.gradient = linalg::Vector(param_count());
  double loss_acc = 0.0;

  for (std::size_t s = 0; s < data.size(); ++s) {
    const auto x = data.features(s);
    const double y = data.label(s) == 1 ? 1.0 : -1.0;
    const double slack = 1.0 - y * margin(params, x);
    if (slack <= 0.0) continue;
    loss_acc += slack * slack;
    // d/dm (slack²) = −2·y·slack
    const double coeff = -2.0 * y * slack;
    for (std::size_t i = 0; i < config_.feature_dim; ++i) {
      out.gradient[i] += coeff * x[i];
    }
    out.gradient[config_.feature_dim] += coeff;
  }

  if (!data.empty()) {
    const double inv = 1.0 / static_cast<double>(data.size());
    out.gradient *= inv;
    loss_acc *= inv;
  }

  double reg = 0.0;
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    out.gradient[i] += config_.l2 * params[i];
    reg += params[i] * params[i];
  }
  out.loss = loss_acc + 0.5 * config_.l2 * reg;
  return out;
}

std::size_t LinearSvm::predict(const linalg::Vector& params,
                               std::span<const double> features) const {
  SNAP_REQUIRE(params.size() == param_count());
  SNAP_REQUIRE(features.size() == config_.feature_dim);
  return margin(params, features) > 0.0 ? 1u : 0u;
}

linalg::Vector LinearSvm::initial_params(common::Rng& rng) const {
  linalg::Vector params(param_count());
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    params[i] = rng.normal(0.0, config_.init_scale);
  }
  params[config_.feature_dim] = 0.0;
  return params;
}

}  // namespace snap::ml

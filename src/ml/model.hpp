// Differentiable model interface.
//
// Every model exposes its parameters as one flat snap::linalg::Vector —
// this is the representation the consensus layer mixes, the wire
// protocol serializes, and the APE controller thresholds. Losses are
// means over the provided samples (the paper's l_i = E_{ξ∼D_i} c(x;ξ))
// plus any model-owned regularization, so a node's objective is
// independent of its shard size.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "linalg/vector.hpp"

namespace snap::ml {

/// Loss value and gradient evaluated at the same point.
struct LossGradient {
  double loss = 0.0;
  linalg::Vector gradient;
};

class Model {
 public:
  virtual ~Model() = default;

  /// Dimension of the flat parameter vector.
  virtual std::size_t param_count() const noexcept = 0;

  /// Short human-readable name ("mlp-784-30-10", ...).
  virtual std::string name() const = 0;

  /// Mean loss over `data` at `params` (empty datasets cost 0 plus
  /// regularization). params.size() must equal param_count().
  virtual double loss(const linalg::Vector& params,
                      const data::Dataset& data) const = 0;

  /// Loss and gradient in one pass (gradient of the mean loss).
  virtual LossGradient loss_gradient(const linalg::Vector& params,
                                     const data::Dataset& data) const = 0;

  /// Predicted class for one feature row.
  virtual std::size_t predict(const linalg::Vector& params,
                              std::span<const double> features) const = 0;

  /// Fresh initial parameters (e.g. scaled Gaussian weights).
  virtual linalg::Vector initial_params(common::Rng& rng) const = 0;

  /// Gradient only (default: via loss_gradient).
  linalg::Vector gradient(const linalg::Vector& params,
                          const data::Dataset& data) const {
    return loss_gradient(params, data).gradient;
  }

  /// Fraction of `data` classified correctly (1.0 for empty data).
  double accuracy(const linalg::Vector& params,
                  const data::Dataset& data) const;
};

}  // namespace snap::ml

#include "ml/model.hpp"

namespace snap::ml {

double Model::accuracy(const linalg::Vector& params,
                       const data::Dataset& data) const {
  if (data.empty()) return 1.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(params, data.features(i)) == data.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace snap::ml

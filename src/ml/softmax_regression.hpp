// Multinomial logistic (softmax) regression with L2 regularization.
//
// A convex multi-class model used by the test suite and examples as a
// middle ground between the SVM (binary, tiny) and the MLP (non-convex,
// large): it exercises multi-class code paths while keeping EXTRA's
// convex-convergence guarantees (Theorem 1) checkable in tests.
// Flat layout: row-major W (num_classes × feature_dim) followed by the
// per-class biases.
#pragma once

#include <cstddef>

#include "ml/model.hpp"

namespace snap::ml {

struct SoftmaxRegressionConfig {
  std::size_t feature_dim = 0;
  std::size_t num_classes = 0;
  double l2 = 1e-4;  ///< L2 strength on W (biases unregularized)
  double init_scale = 0.01;
};

class SoftmaxRegression final : public Model {
 public:
  explicit SoftmaxRegression(const SoftmaxRegressionConfig& config);

  std::size_t param_count() const noexcept override {
    return config_.num_classes * (config_.feature_dim + 1);
  }
  std::string name() const override;

  double loss(const linalg::Vector& params,
              const data::Dataset& data) const override;
  LossGradient loss_gradient(const linalg::Vector& params,
                             const data::Dataset& data) const override;
  std::size_t predict(const linalg::Vector& params,
                      std::span<const double> features) const override;
  linalg::Vector initial_params(common::Rng& rng) const override;

  const SoftmaxRegressionConfig& config() const noexcept { return config_; }

 private:
  /// Writes class logits for one sample into `logits`.
  void logits_for(const linalg::Vector& params,
                  std::span<const double> features,
                  std::span<double> logits) const;

  std::size_t weight_count() const noexcept {
    return config_.num_classes * config_.feature_dim;
  }

  SoftmaxRegressionConfig config_;
};

/// Numerically stable in-place softmax.
void softmax_inplace(std::span<double> logits);

}  // namespace snap::ml

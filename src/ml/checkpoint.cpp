#include "ml/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "common/binary_io.hpp"
#include "common/check.hpp"

namespace snap::ml {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'A', 'P', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::vector<std::byte> encode_checkpoint(const Checkpoint& checkpoint) {
  common::ByteWriter writer(32 + checkpoint.model_name.size() +
                            8 * checkpoint.params.size());
  for (const char c : kMagic) {
    writer.write_u8(static_cast<std::uint8_t>(c));
  }
  writer.write_u32(kVersion);
  writer.write_u32(static_cast<std::uint32_t>(checkpoint.model_name.size()));
  for (const char c : checkpoint.model_name) {
    writer.write_u8(static_cast<std::uint8_t>(c));
  }
  writer.write_u64(checkpoint.params.size());
  for (std::size_t i = 0; i < checkpoint.params.size(); ++i) {
    writer.write_f64(checkpoint.params[i]);
  }
  writer.write_u64(fnv1a(writer.bytes()));
  return writer.take();
}

std::optional<Checkpoint> decode_checkpoint(
    std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + 4 + 8 + 8) return std::nullopt;

  // Verify the trailing checksum over everything before it.
  const std::span<const std::byte> body = bytes.first(bytes.size() - 8);
  common::ByteReader tail_reader(bytes.subspan(bytes.size() - 8));
  if (tail_reader.read_u64() != fnv1a(body)) return std::nullopt;

  common::ByteReader reader(body);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(reader.read_u8());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  if (reader.read_u32() != kVersion) return std::nullopt;

  const std::uint32_t name_length = reader.read_u32();
  if (!reader.ok() || name_length > body.size()) return std::nullopt;
  Checkpoint checkpoint;
  checkpoint.model_name.reserve(name_length);
  for (std::uint32_t i = 0; i < name_length; ++i) {
    checkpoint.model_name.push_back(static_cast<char>(reader.read_u8()));
  }

  const std::uint64_t count = reader.read_u64();
  if (!reader.ok() || count * 8 != reader.remaining()) return std::nullopt;
  checkpoint.params = linalg::Vector(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    checkpoint.params[i] = reader.read_f64();
  }
  if (!reader.ok()) return std::nullopt;
  return checkpoint;
}

bool save_checkpoint(const std::string& path,
                     const Checkpoint& checkpoint) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  const auto bytes = encode_checkpoint(checkpoint);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return std::nullopt;
  const std::streamsize size = file.tellg();
  file.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  file.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!file) return std::nullopt;
  return decode_checkpoint(bytes);
}

}  // namespace snap::ml

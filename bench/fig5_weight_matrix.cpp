// Reproduces Fig. 5 — benefit of the §IV-B weight-matrix optimization.
//
// Paper setup (§V-B): SVM on the credit data over random topologies;
// iterations-to-convergence for SNAP and SNAP-0 with and without the
// optimized weight matrix.
//   (a) sweep the number of edge servers (default degree 3),
//   (b) sweep the average node degree (default 60 servers).
//
// Paper shape targets: optimization reduces the iteration count; the
// reduction grows with network scale and with node degree; at degree 2
// there is little room to optimize.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "experiments/report.hpp"
#include "common/strings.hpp"
#include "experiments/scenario.hpp"

namespace {

using namespace snap;

constexpr std::size_t kSeedRepeats = 3;

void sweep(const std::string& banner, const std::string& x_label,
           const std::vector<std::pair<std::size_t, double>>& settings) {
  experiments::print_banner(std::cout, banner);
  experiments::Table table({x_label, "SNAP (opt W)", "SNAP (plain W)",
                            "SNAP-0 (opt W)", "SNAP-0 (plain W)"});
  for (const auto& [nodes, degree] : settings) {
    // Average over several topology seeds: a single random graph's
    // optimization headroom is noisy.
    double snap_opt = 0.0;
    double snap_plain = 0.0;
    double snap0_opt = 0.0;
    double snap0_plain = 0.0;
    for (std::size_t repeat = 0; repeat < kSeedRepeats; ++repeat) {
      const experiments::Scenario scenario(
          bench::sim_config(nodes, degree, 2020 + repeat * 101));
      // Mixing speed is what the weight matrix controls, so the bar
      // adds a tight consensus requirement on top of the loss target —
      // with homogeneous random shards the loss alone is
      // gradient-limited and would mask the matrix entirely.
      auto criteria = bench::target_criteria(scenario, /*margin=*/0.10);
      criteria.consensus_tolerance = 1e-4;
      snap_opt += double(scenario
                             .run_snap_variant(core::FilterMode::kApe, true,
                                               0.0, criteria)
                             .converged_after);
      snap_plain += double(scenario
                               .run_snap_variant(core::FilterMode::kApe,
                                                 false, 0.0, criteria)
                               .converged_after);
      snap0_opt +=
          double(scenario
                     .run_snap_variant(core::FilterMode::kExactChange, true,
                                       0.0, criteria)
                     .converged_after);
      snap0_plain +=
          double(scenario
                     .run_snap_variant(core::FilterMode::kExactChange,
                                       false, 0.0, criteria)
                     .converged_after);
    }
    const double inv = 1.0 / double(kSeedRepeats);
    const std::string x = x_label == "servers" ? std::to_string(nodes)
                                               : std::to_string(int(degree));
    table.add_row({x, common::format_double(snap_opt * inv, 0),
                   common::format_double(snap_plain * inv, 0),
                   common::format_double(snap0_opt * inv, 0),
                   common::format_double(snap0_plain * inv, 0)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace snap;
  bench::print_run_header("Fig. 5 weight-matrix optimization",
                          bench::sim_config(60, 3.0));

  sweep("Fig. 5(a) iterations-to-convergence vs network scale (degree 3)",
        "servers",
        {{20, 3.0}, {40, 3.0}, {60, 3.0}, {80, 3.0}, {100, 3.0}});

  sweep("Fig. 5(b) iterations-to-convergence vs average degree (60 servers)",
        "degree", {{60, 2.0}, {60, 3.0}, {60, 4.0}, {60, 5.0}, {60, 6.0}});

  std::cout << "\nPaper shape targets: optimized W needs no more "
               "iterations than eq.(24); the gap widens with more "
               "servers and higher degree; degree 2 shows little gain.\n";
  return 0;
}

// Extension experiment (beyond the paper): non-IID data placement.
//
// The paper evaluates uniform-random sample allocation only (§V). Real
// edge deployments see skewed data — a base station's samples reflect
// its neighborhood. This bench sweeps the label-skew strength from the
// paper's IID setting to fully sorted classes and reports how SNAP,
// SNAP-0, and PS respond in iterations and accuracy.
//
// Observed behaviour (both effects are real properties of the paper's
// objective, not artifacts):
//   - moderate skew costs iterations: local objectives disagree, so the
//     consensus machinery must carry more information per round;
//   - extreme skew shifts the optimum itself: the aggregate objective
//     Σ_i E_{ξ∼D_i} weights every *server* equally, so when label-pure
//     shards have unequal sizes the classes get reweighted relative to
//     the pooled data distribution, and every distributed scheme
//     (including the parameter server) converges to a different model
//     than centralized training. This is the classic federated
//     objective-inconsistency phenomenon, surfaced here by SNAP's
//     Σ f_i formulation (paper eq. (1)).
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

int main() {
  using namespace snap;
  using experiments::Scheme;

  auto base = bench::sim_config(30, 3.0);
  base.train_samples = bench::scaled(9'000);
  base.test_samples = bench::scaled(2'000);
  bench::print_run_header("Extension — non-IID data placement", base);

  experiments::print_banner(
      std::cout,
      "iterations-to-accuracy-bar and final accuracy vs label skew "
      "(30 servers, degree 3, SVM)");
  experiments::Table table({"label skew", "SNAP iters", "SNAP acc",
                            "SNAP-0 iters", "SNAP-0 acc", "PS iters",
                            "PS acc", "centralized acc"});
  for (const double skew : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto cfg = base;
    cfg.label_skew = skew;
    const experiments::Scenario scenario(cfg);
    auto criteria = bench::accuracy_criteria(scenario, 0.01, 1200);
    const auto snap = scenario.run(Scheme::kSnap, criteria);
    const auto snap0 = scenario.run(Scheme::kSnap0, criteria);
    const auto ps = scenario.run(Scheme::kPs, criteria);
    auto row_entry = [](const core::TrainResult& r) {
      return std::to_string(r.converged_after) + (r.converged ? "" : "*");
    };
    table.add_row({common::format_percent(skew, 0), row_entry(snap),
                   common::format_double(snap.final_test_accuracy, 4),
                   row_entry(snap0),
                   common::format_double(snap0.final_test_accuracy, 4),
                   row_entry(ps),
                   common::format_double(ps.final_test_accuracy, 4),
                   common::format_double(scenario.reference_accuracy(), 4)});
  }
  table.print(std::cout);
  std::cout << "(* = iteration cap reached)\n"
            << "\nExpected shape: moderate skew costs iterations; at "
               "extreme skew every distributed scheme (PS included) "
               "misses the centralized bar because the per-server-equal "
               "objective (paper eq. (1)) reweights classes when "
               "label-pure shards have unequal sizes.\n";
  return 0;
}

// Topology-cost bench — loss-vs-bytes under cost-aware sparsification.
//
// Three topology families (ring with chords, star, random-connected)
// run SNAP twice for the same fixed round count: once on the full
// topology with the usual fixed W, once with the cost-aware link
// sparsifier pruning hop-priced links under a SLEM budget before
// training starts. The sparsified run moves fewer bytes per round; the
// headline question is whether its final loss stays within 5% of the
// fixed-W run while spending at least 20% fewer wire bytes.
//
// The star is the built-in control: every spoke is a bridge, so the
// sparsifier must prune nothing and the two runs must coincide — a
// non-zero prune count there is a connectivity bug, not a saving.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "topology/generators.hpp"
#include "topology/graph.hpp"

namespace {

using namespace snap;

constexpr std::size_t kNodes = 16;
constexpr std::size_t kIterations = 150;

struct TopologyCase {
  const char* name;
  topology::Graph graph;
  bool expect_pruning;
};

std::vector<TopologyCase> topology_cases() {
  std::vector<TopologyCase> cases;

  // Ring plus chords: cheap shortcuts the hop-cost model loves to cut.
  topology::Graph ring = topology::make_ring(kNodes);
  common::Rng chord_rng(2020);
  std::size_t added = 0;
  while (added < kNodes / 2) {
    const auto u = static_cast<topology::NodeId>(
        chord_rng.uniform_u64(kNodes));
    const auto v = static_cast<topology::NodeId>(
        chord_rng.uniform_u64(kNodes));
    if (u == v || ring.has_edge(u, v)) continue;
    ring.add_edge(u, v);
    ++added;
  }
  cases.push_back({"ring+chords", std::move(ring), true});

  cases.push_back({"star", topology::make_star(kNodes), false});

  common::Rng er_rng(77);
  cases.push_back(
      {"random", topology::make_random_connected(kNodes, 5.0, er_rng),
       true});
  return cases;
}

experiments::ScenarioConfig case_config(const topology::Graph& g,
                                        bool sparsify) {
  auto cfg = bench::sim_config(kNodes, 5.0);
  cfg.custom_topology = g;
  cfg.convergence.min_iterations = kIterations;
  cfg.convergence.max_iterations = kIterations;  // fixed-length runs
  if (sparsify) {
    cfg.sparsify.enabled = true;
    cfg.sparsify.slem_bound = 1.0;
    cfg.sparsify.cost_budget = 0.75;
    cfg.sparsify.cost_model = consensus::LinkCostModel::kHops;
    // Co-optimization: re-run the §IV-B weight optimizer on the
    // survivors, with the same settings the fixed-W run used — so the
    // zero-prune star reproduces the fixed-W run exactly.
    cfg.sparsify.reweight = consensus::ReprojectionMethod::kOptimize;
    cfg.sparsify.optimizer = cfg.weight_optimizer;
  }
  return cfg;
}

void run_case(const TopologyCase& tc, bench::JsonDoc& json) {
  experiments::print_banner(
      std::cout, std::string("Topology cost — ") + tc.name + " (" +
                     std::to_string(tc.graph.node_count()) + " nodes, " +
                     std::to_string(tc.graph.edge_count()) + " edges)");

  const experiments::Scenario fixed_scenario(case_config(tc.graph, false));
  const auto fixed = fixed_scenario.run(experiments::Scheme::kSnap);
  const experiments::Scenario sparse_scenario(case_config(tc.graph, true));
  const auto sparse = sparse_scenario.run(experiments::Scheme::kSnap);

  const auto& last = sparse.iterations.back();
  const double loss_gap =
      (sparse.final_train_loss - fixed.final_train_loss) /
      fixed.final_train_loss;
  const double bytes_saved =
      1.0 - static_cast<double>(sparse.total_bytes) /
                static_cast<double>(fixed.total_bytes);
  const bool within_loss = loss_gap <= 0.05;
  const bool enough_saved = bytes_saved >= 0.20;

  experiments::Table table({"quantity", "fixed-W", "sparsified"});
  table.add_row({"links pruned", "0", std::to_string(last.links_pruned)});
  table.add_row({"effective edges", std::to_string(tc.graph.edge_count()),
                 std::to_string(last.effective_edges)});
  table.add_row({"slem after prune", "-",
                 common::format_double(last.slem_after_prune, 4)});
  table.add_row({"final train loss",
                 common::format_double(fixed.final_train_loss, 5),
                 common::format_double(sparse.final_train_loss, 5)});
  table.add_row({"total bytes", std::to_string(fixed.total_bytes),
                 std::to_string(sparse.total_bytes)});
  table.add_row({"loss gap", "-",
                 common::format_percent(loss_gap, 2) +
                     (within_loss ? "  (within 5%)" : "  (OVER 5%)")});
  table.add_row({"bytes saved", "-",
                 common::format_percent(bytes_saved, 2) +
                     (enough_saved ? "  (>= 20%)" : "  (below 20%)")});
  table.print(std::cout);

  if (!tc.expect_pruning && last.links_pruned != 0) {
    std::cout << "WARNING: " << tc.name
              << " pruned a bridge-only topology — connectivity bug\n";
  }

  json.add_row("summary",
               {{"topology", tc.name},
                {"edges", std::uint64_t{tc.graph.edge_count()}},
                {"links_pruned", last.links_pruned},
                {"effective_edges", last.effective_edges},
                {"slem_after_prune", last.slem_after_prune},
                {"fixed_final_loss", fixed.final_train_loss},
                {"sparsified_final_loss", sparse.final_train_loss},
                {"fixed_total_bytes", fixed.total_bytes},
                {"sparsified_total_bytes", sparse.total_bytes},
                {"loss_gap", loss_gap},
                {"bytes_saved", bytes_saved},
                {"within_5pct_loss", within_loss},
                {"saved_20pct_bytes", enough_saved}});

  // Loss-vs-cumulative-bytes trace for both runs, sampled for plotting.
  const auto trace = [&](const char* variant,
                         const core::TrainResult& result) {
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < result.iterations.size(); ++i) {
      cum += result.iterations[i].bytes;
      if (i % 10 != 0 && i + 1 != result.iterations.size()) continue;
      json.add_row("trace",
                   {{"topology", tc.name},
                    {"variant", variant},
                    {"iteration", std::uint64_t{i + 1}},
                    {"cumulative_bytes", cum},
                    {"train_loss", result.iterations[i].train_loss}});
    }
  };
  trace("fixed", fixed);
  trace("sparsified", sparse);
}

}  // namespace

int main() {
  const auto header_cfg = bench::sim_config(kNodes, 5.0);
  bench::print_run_header("topology cost (sparsified vs fixed-W)",
                          header_cfg);
  bench::JsonDoc json;
  json.add_meta("bench", "topology_cost");
  json.add_meta("seed", std::uint64_t{header_cfg.seed});
  json.add_meta("bench_scale", bench::bench_scale());
  json.add_meta("nodes", std::uint64_t{kNodes});
  json.add_meta("iterations", std::uint64_t{kIterations});
  json.add_meta("cost_budget", 0.75);
  json.add_meta("cost_model", "hops");

  for (const TopologyCase& tc : topology_cases()) run_case(tc, json);

  std::cout << "\nShape expectations: ring+chords and the random graph "
               "prune their redundant shortcuts and land within 5% of "
               "the fixed-W loss at >= 20% fewer bytes; the star prunes "
               "nothing (every spoke is a bridge) and reproduces the "
               "fixed-W run exactly.\n";
  json.write_file("BENCH_topology_cost.json");
  return 0;
}

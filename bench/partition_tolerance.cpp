// Partition-tolerance bench — split-brain survival and merge-on-heal.
//
// A barbell topology (two K8 communities joined by one bridge edge) is
// cut by a scheduled partition for a fixed round window, then healed.
// During the split each connected component must keep making loss
// progress on its own (per-component consensus: block-diagonal W,
// per-component EXTRA restart), and after the heal the merged run must
// recover to within 5% of an unpartitioned run of the same scenario at
// an equal byte budget. Both checks run on the shared-clock and the
// gossip fabric, which replay the identical partition schedule by
// construction.
//
// Per-component losses come from the Scenario's per-iteration observer:
// the mean model of each community, scored on the held-out test set.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "net/fault_injector.hpp"
#include "topology/graph.hpp"

namespace {

using namespace snap;

constexpr std::size_t kHalf = 8;             // nodes per community
constexpr std::size_t kNodes = 2 * kHalf;    // barbell total
constexpr std::size_t kSplitRound = 60;      // bridge cut takes effect
constexpr std::size_t kHealRound = 150;      // cut lifted, components merge
constexpr std::size_t kMaxIterations = 260;  // recovery room after heal

topology::Graph barbell() {
  topology::Graph g(kNodes);
  for (topology::NodeId u = 0; u < kHalf; ++u) {
    for (topology::NodeId v = u + 1; v < kHalf; ++v) g.add_edge(u, v);
  }
  for (topology::NodeId u = kHalf; u < kNodes; ++u) {
    for (topology::NodeId v = u + 1; v < kNodes; ++v) g.add_edge(u, v);
  }
  g.add_edge(kHalf - 1, kHalf);  // the bridge
  return g;
}

experiments::ScenarioConfig base_config(runtime::FabricKind fabric) {
  auto cfg = bench::sim_config(kNodes, 3.0);
  cfg.custom_topology = barbell();
  cfg.convergence.max_iterations = kMaxIterations;
  cfg.convergence.min_iterations = kMaxIterations;  // fixed-length runs
  cfg.fabric = fabric;
  return cfg;
}

experiments::ScenarioConfig partitioned_config(runtime::FabricKind fabric) {
  auto cfg = base_config(fabric);
  net::PartitionEvent event;
  event.edges = {{kHalf - 1, kHalf}};
  event.start_round = kSplitRound;
  event.heal_round = kHealRound;
  cfg.faults.scheduled_partitions.push_back(event);
  cfg.faults.partition_confirm_rounds = 1;
  return cfg;
}

/// Per-iteration loss of each community's mean model on the test set.
struct ComponentTrace {
  std::vector<double> left;   // nodes [0, kHalf)
  std::vector<double> right;  // nodes [kHalf, kNodes)
};

/// Aggregate train loss at the last evaluated iteration whose cumulative
/// byte count stays within `budget`.
double loss_at_budget(const core::TrainResult& result,
                      std::uint64_t budget) {
  std::uint64_t cum = 0;
  double loss = result.iterations.front().train_loss;
  for (const auto& it : result.iterations) {
    cum += it.bytes;
    if (cum > budget) break;
    if (it.evaluated) loss = it.train_loss;
  }
  return loss;
}

const char* fabric_label(runtime::FabricKind fabric) {
  return fabric == runtime::FabricKind::kGossip ? "gossip" : "sync";
}

void run_fabric(runtime::FabricKind fabric, bench::JsonDoc& json) {
  experiments::print_banner(
      std::cout, std::string("Partition tolerance — ") +
                     fabric_label(fabric) + " fabric (bridge cut rounds [" +
                     std::to_string(kSplitRound) + ", " +
                     std::to_string(kHealRound) + "))");

  // Partitioned run, with the per-component probe installed.
  experiments::Scenario scenario(partitioned_config(fabric));
  ComponentTrace trace;
  scenario.set_snap_observer([&](std::size_t /*iteration*/,
                                 const std::vector<core::SnapNode>& nodes) {
    linalg::Vector left(nodes.front().params().size());
    linalg::Vector right(nodes.front().params().size());
    for (std::size_t i = 0; i < kHalf; ++i) left += nodes[i].params();
    for (std::size_t i = kHalf; i < kNodes; ++i) right += nodes[i].params();
    left *= 1.0 / static_cast<double>(kHalf);
    right *= 1.0 / static_cast<double>(kHalf);
    trace.left.push_back(scenario.model().loss(left, scenario.test_set()));
    trace.right.push_back(
        scenario.model().loss(right, scenario.test_set()));
  });
  const auto split_result = scenario.run(experiments::Scheme::kSnap);

  // Unpartitioned reference on the identical scenario.
  const experiments::Scenario whole_scenario(base_config(fabric));
  const auto whole_result = whole_scenario.run(experiments::Scheme::kSnap);

  // Split window as observed: iterations where the injector reported
  // more than one component.
  std::size_t split_begin = 0;
  std::size_t split_end = 0;  // one past the last split iteration
  std::uint64_t max_components = 1;
  double min_largest_frac = 1.0;
  for (std::size_t i = 0; i < split_result.iterations.size(); ++i) {
    const auto& it = split_result.iterations[i];
    max_components = std::max(max_components, it.components);
    min_largest_frac = std::min(min_largest_frac, it.largest_component_frac);
    if (it.components > 1) {
      if (split_end == 0) split_begin = i;
      split_end = i + 1;
    }
  }
  const std::uint64_t final_epoch =
      split_result.iterations.back().partition_epoch;

  // (1) Every component makes independent loss progress during the split.
  const double left_start = trace.left[split_begin];
  const double left_end = trace.left[split_end - 1];
  const double right_start = trace.right[split_begin];
  const double right_end = trace.right[split_end - 1];
  const bool left_progress = left_end < left_start;
  const bool right_progress = right_end < right_start;

  // (2) Post-heal loss within 5% of the unpartitioned run at an equal
  // byte budget.
  const std::uint64_t budget =
      std::min(split_result.total_bytes, whole_result.total_bytes);
  const double split_loss = loss_at_budget(split_result, budget);
  const double whole_loss = loss_at_budget(whole_result, budget);
  const double rel_gap = (split_loss - whole_loss) / whole_loss;
  const bool recovered = rel_gap <= 0.05;

  experiments::Table table({"quantity", "value"});
  table.add_row({"components during split", std::to_string(max_components)});
  table.add_row({"largest component frac",
                 common::format_double(min_largest_frac, 3)});
  table.add_row({"final partition epoch", std::to_string(final_epoch)});
  table.add_row({"left loss over split",
                 common::format_double(left_start, 5) + " -> " +
                     common::format_double(left_end, 5) +
                     (left_progress ? "  (progress)" : "  (STALLED)")});
  table.add_row({"right loss over split",
                 common::format_double(right_start, 5) + " -> " +
                     common::format_double(right_end, 5) +
                     (right_progress ? "  (progress)" : "  (STALLED)")});
  table.add_row({"equal-budget loss (split vs whole)",
                 common::format_double(split_loss, 5) + " vs " +
                     common::format_double(whole_loss, 5)});
  table.add_row({"relative gap",
                 common::format_percent(rel_gap, 2) +
                     (recovered ? "  (within 5%)" : "  (NOT recovered)")});
  table.print(std::cout);

  for (const char* side : {"left", "right"}) {
    const bool is_left = side[0] == 'l';
    json.add_row("split_progress",
                 {{"fabric", fabric_label(fabric)},
                  {"component", side},
                  {"loss_at_split_start", is_left ? left_start : right_start},
                  {"loss_at_split_end", is_left ? left_end : right_end},
                  {"progressed", is_left ? left_progress : right_progress}});
  }
  json.add_row("recovery",
               {{"fabric", fabric_label(fabric)},
                {"budget_bytes", budget},
                {"partitioned_loss", split_loss},
                {"unpartitioned_loss", whole_loss},
                {"relative_gap", rel_gap},
                {"within_5pct", recovered},
                {"max_components", max_components},
                {"min_largest_component_frac", min_largest_frac},
                {"final_partition_epoch", final_epoch}});
  // Sampled per-component trace for plotting loss-vs-round.
  for (std::size_t i = 0; i < trace.left.size(); i += 10) {
    json.add_row("component_trace",
                 {{"fabric", fabric_label(fabric)},
                  {"iteration", std::uint64_t{i + 1}},
                  {"left_loss", trace.left[i]},
                  {"right_loss", trace.right[i]},
                  {"components",
                   split_result.iterations[i].components}});
  }
}

}  // namespace

int main() {
  const auto cfg = partitioned_config(runtime::FabricKind::kSync);
  bench::print_run_header("partition tolerance (split-brain + heal)", cfg);
  bench::JsonDoc json;
  json.add_meta("bench", "partition_tolerance");
  json.add_meta("seed", std::uint64_t{cfg.seed});
  json.add_meta("bench_scale", bench::bench_scale());
  json.add_meta("split_round", std::uint64_t{kSplitRound});
  json.add_meta("heal_round", std::uint64_t{kHealRound});

  run_fabric(runtime::FabricKind::kSync, json);
  run_fabric(runtime::FabricKind::kGossip, json);

  std::cout << "\nShape expectations: the bridge cut splits the barbell "
               "into two components that each keep reducing their own "
               "loss (block-diagonal W, per-component EXTRA restart); "
               "after the heal the merged run re-projects W onto the "
               "whole graph and closes to within 5% of the unpartitioned "
               "reference at the same byte budget.\n";
  json.write_file("BENCH_partition_tolerance.json");
  return 0;
}

// Reproduces Fig. 7 — model accuracy vs network characteristics.
//
// Paper setup (§V-B): SVM on credit data; final test accuracy of each
// scheme while sweeping (a) the number of edge servers and (b) the
// average node degree. Centralized training is the yardstick.
//
// Paper shape targets: SNAP and SNAP-0 match centralized accuracy at
// every scale; PS and TernGrad fall short, and TernGrad's degradation
// grows with the network size (paper: up to 3.5% at 100 servers).
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

namespace {

using namespace snap;
using experiments::Scheme;

void sweep(const std::string& banner, const std::string& x_label,
           const std::vector<std::pair<std::size_t, double>>& settings) {
  experiments::print_banner(std::cout, banner);
  const std::vector<Scheme> schemes{Scheme::kCentralized, Scheme::kSnap,
                                    Scheme::kSnap0, Scheme::kPs,
                                    Scheme::kTernGrad};
  std::vector<std::string> headers{x_label};
  for (const Scheme s : schemes) {
    headers.emplace_back(experiments::scheme_name(s));
  }
  experiments::Table table(headers);
  for (const auto& [nodes, degree] : settings) {
    const experiments::Scenario scenario(bench::sim_config(nodes, degree));
    std::vector<std::string> row{x_label == "servers"
                                     ? std::to_string(nodes)
                                     : std::to_string(int(degree))};
    for (const Scheme s : schemes) {
      row.push_back(
          common::format_double(scenario.run(s).final_test_accuracy, 4));
    }
    table.add_row(row);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace snap;
  bench::print_run_header("Fig. 7 accuracy", bench::sim_config(60, 3.0));

  sweep("Fig. 7(a) final accuracy vs network scale (degree 3)", "servers",
        {{20, 3.0}, {40, 3.0}, {60, 3.0}, {80, 3.0}, {100, 3.0}});

  sweep("Fig. 7(b) final accuracy vs average degree (60 servers)",
        "degree", {{60, 2.0}, {60, 3.0}, {60, 4.0}, {60, 5.0}, {60, 6.0}});

  std::cout << "\nPaper shape targets: SNAP ≈ SNAP-0 ≈ centralized at "
               "every setting; TernGrad loses the most accuracy and the "
               "gap widens with network size.\n";
  return 0;
}

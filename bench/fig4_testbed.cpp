// Reproduces Fig. 4 — the 3-server testbed experiment.
//
// Paper setup (§V-A): 3 fully connected servers, MLP 784–30–10 on MNIST
// with ~equal shards. Reported:
//   (a) model accuracy vs iteration — Centralized, SNAP, SNAP-0,
//       TernGrad (PS omitted: on K_3 it matches SNAP-0),
//   (b) bytes written to sockets per iteration — SNAP, SNAP-0, SNO, PS,
//       TernGrad,
//   (c) total bytes until convergence, relative to PS.
//
// Paper shape targets: SNAP catches the centralized accuracy within a
// few iterations; TernGrad converges far slower; SNAP's per-iteration
// bytes decay toward 0 while PS/SNO/TernGrad stay flat; SNAP's total is
// a few percent of PS; SNO ≈ 1.5× PS; SNAP well below SNAP-0.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

int main() {
  using namespace snap;
  using experiments::Scheme;

  experiments::ScenarioConfig cfg;
  cfg.workload = experiments::Workload::kMnistMlp;
  cfg.nodes = 3;
  cfg.complete_topology = true;
  cfg.train_samples = bench::scaled(1'500);
  cfg.test_samples = bench::scaled(1'000);
  cfg.alpha = 1.0;
  // The paper's Fig. 4 plots a fixed horizon (their testbed converges
  // within ~20 iterations and the plots run to a fixed length); we use
  // a fixed 60-iteration horizon shared by all schemes so the totals in
  // (c) are comparable.
  cfg.convergence.loss_tolerance = 0.0;
  cfg.convergence.max_iterations = 60;
  // Calibration for the MLP's parameter scale (Xavier weights average
  // ~0.03 in magnitude): a 10%-of-mean budget filters almost nothing at
  // this α, so the testbed uses a larger fraction. See EXPERIMENTS.md.
  cfg.ape.initial_budget_fraction = 0.3;
  cfg.seed = 2020;
  bench::print_run_header("Fig. 4 testbed (3 servers, MLP, MNIST-like)",
                          cfg);

  const experiments::Scenario scenario(cfg);

  const std::vector<Scheme> accuracy_schemes{
      Scheme::kCentralized, Scheme::kSnap, Scheme::kSnap0,
      Scheme::kTernGrad};
  const std::vector<Scheme> traffic_schemes{Scheme::kSnap, Scheme::kSnap0,
                                            Scheme::kSno, Scheme::kPs,
                                            Scheme::kTernGrad};

  std::vector<core::TrainResult> results;
  std::vector<Scheme> all{Scheme::kCentralized, Scheme::kSnap,
                          Scheme::kSnap0,      Scheme::kSno,
                          Scheme::kPs,         Scheme::kTernGrad};
  for (const Scheme scheme : all) {
    results.push_back(scenario.run(scheme));
  }
  auto result_of = [&](Scheme s) -> const core::TrainResult& {
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i] == s) return results[i];
    }
    throw std::logic_error("scheme not run");
  };

  experiments::print_banner(std::cout, "Fig. 4(a) accuracy vs iteration");
  std::cout << "# iteration";
  for (const Scheme s : accuracy_schemes) {
    std::cout << "  " << experiments::scheme_name(s);
  }
  std::cout << '\n';
  std::size_t longest = 0;
  for (const Scheme s : accuracy_schemes) {
    longest = std::max(longest, result_of(s).iterations.size());
  }
  for (std::size_t k = 0; k < longest; k += 2) {
    std::cout << "  " << (k + 1);
    for (const Scheme s : accuracy_schemes) {
      const auto& iters = result_of(s).iterations;
      const auto& stat = iters[std::min(k, iters.size() - 1)];
      std::cout << "  " << common::format_double(stat.test_accuracy, 4);
    }
    std::cout << '\n';
  }

  experiments::print_banner(std::cout,
                            "Fig. 4(b) bytes per iteration (socket bytes)");
  std::cout << "# iteration";
  for (const Scheme s : traffic_schemes) {
    std::cout << "  " << experiments::scheme_name(s);
  }
  std::cout << '\n';
  for (std::size_t k = 0; k < longest; k += 2) {
    std::cout << "  " << (k + 1);
    for (const Scheme s : traffic_schemes) {
      const auto& iters = result_of(s).iterations;
      const std::uint64_t bytes =
          k < iters.size() ? iters[k].bytes : 0;  // converged => silent
      std::cout << "  " << bytes;
    }
    std::cout << '\n';
  }

  experiments::print_banner(std::cout,
                            "Fig. 4(c) total communication (vs PS)");
  experiments::Table table(
      {"scheme", "horizon", "total bytes", "vs PS", "final accuracy"});
  const double ps_total =
      static_cast<double>(result_of(Scheme::kPs).total_bytes);
  for (const Scheme s : all) {
    const auto& r = result_of(s);
    table.add_row({std::string(experiments::scheme_name(s)),
                   std::to_string(r.converged_after),
                   common::format_bytes(double(r.total_bytes)),
                   s == Scheme::kCentralized
                       ? "-"
                       : common::format_percent(
                             double(r.total_bytes) / ps_total, 2),
                   common::format_double(r.final_test_accuracy, 4)});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape targets: SNAP total a few % of PS "
               "(paper: 3.56%), SNAP ≈ 20% of SNAP-0, SNO ≈ 150% of PS, "
               "TernGrad slowest to converge.\n";
  return 0;
}

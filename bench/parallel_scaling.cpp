// Round-throughput scaling of the thread-pool parallel trainers.
//
// Runs a fixed-length SNAP (SNO mode — every round moves the full
// model, so the per-round work is constant) training job on a 32-node
// topology with threads = 1 and threads = N, reports rounds/second and
// the speedup, and verifies the determinism contract on the side: every
// thread count must reproduce the serial run bit for bit.
//
// SNAP_BENCH_SCALE shrinks/grows the workload as for the figure
// benches; SNAP_BENCH_THREADS overrides the parallel thread count
// (default: 4, the acceptance configuration).
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/training.hpp"
#include "experiments/scenario.hpp"

namespace {

using namespace snap;

std::size_t parallel_threads() {
  if (const char* raw = std::getenv("SNAP_BENCH_THREADS")) {
    const long value = std::atol(raw);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  return 4;
}

struct TimedRun {
  core::TrainResult result;
  double seconds = 0.0;
};

TimedRun run_with_threads(const experiments::ScenarioConfig& base,
                          std::size_t threads) {
  experiments::ScenarioConfig cfg = base;
  cfg.threads = threads;
  const experiments::Scenario scenario(cfg);
  const auto start = std::chrono::steady_clock::now();
  TimedRun out;
  out.result = scenario.run(experiments::Scheme::kSno);
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

bool identical(const core::TrainResult& a, const core::TrainResult& b) {
  if (a.total_bytes != b.total_bytes || a.total_cost != b.total_cost ||
      a.iterations.size() != b.iterations.size() ||
      a.final_train_loss != b.final_train_loss ||
      a.final_params.size() != b.final_params.size()) {
    return false;
  }
  for (std::size_t d = 0; d < a.final_params.size(); ++d) {
    if (a.final_params[d] != b.final_params[d]) return false;
  }
  for (std::size_t k = 0; k < a.iterations.size(); ++k) {
    if (a.iterations[k].train_loss != b.iterations[k].train_loss ||
        a.iterations[k].bytes != b.iterations[k].bytes) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  experiments::ScenarioConfig cfg = bench::sim_config(32, 3.0);
  cfg.convergence.max_iterations = bench::scaled(60);
  cfg.convergence.loss_tolerance = 0.0;  // fixed-length run
  cfg.convergence.target_loss = 0.0;
  bench::print_run_header("parallel round scaling", cfg);

  const std::size_t threads = parallel_threads();
  std::cout << "nodes=32 rounds=" << cfg.convergence.max_iterations
            << " hardware_threads=" << common::resolve_thread_count(0)
            << "\n\n";

  const TimedRun serial = run_with_threads(cfg, 1);
  const TimedRun parallel = run_with_threads(cfg, threads);

  const double rounds =
      static_cast<double>(serial.result.iterations.size());
  std::cout << std::fixed << std::setprecision(2);
  std::cout << "threads=1"
            << "  wall=" << serial.seconds << "s"
            << "  rounds/s=" << rounds / serial.seconds << "\n";
  std::cout << "threads=" << threads << "  wall=" << parallel.seconds
            << "s"
            << "  rounds/s=" << rounds / parallel.seconds << "\n";
  const double speedup = serial.seconds / parallel.seconds;
  std::cout << "speedup=" << speedup << "x\n";

  if (!identical(serial.result, parallel.result)) {
    std::cout << "DETERMINISM VIOLATION: threads=" << threads
              << " diverged from threads=1\n";
    return 1;
  }
  std::cout << "determinism: threads=" << threads
            << " bitwise identical to threads=1\n";
  return 0;
}

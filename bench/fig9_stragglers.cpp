// Reproduces Fig. 9 — impact of stragglers.
//
// Paper setup (§V-B): SVM simulation; a fraction of links is
// temporarily unavailable each round; a node missing an update reuses
// the last values it received (§IV-D). Reported: iterations to
// convergence vs the percentage of unavailable links.
//
// Paper shape targets: 1% unavailable links leave convergence
// untouched; 5% cost about 11.8% more iterations; more failures cost
// more, but the run always converges.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

namespace {

using namespace snap;

void sweep_policy(const experiments::Scenario& scenario,
                  core::StragglerPolicy policy, const char* title) {
  experiments::print_banner(std::cout, title);
  experiments::Table table({"link failure", "iterations", "vs healthy",
                            "converged", "final accuracy"});
  auto criteria = bench::accuracy_criteria(scenario, /*slack=*/0.02);
  criteria.max_iterations = 2000;  // heavy-failure runs still finish
  double healthy_iterations = 0.0;
  for (const double failure : {0.0, 0.005, 0.01, 0.02, 0.05, 0.10}) {
    const auto result = scenario.run_snap_variant(
        core::FilterMode::kApe, true, failure, criteria, policy);
    if (failure == 0.0) {
      healthy_iterations = static_cast<double>(result.converged_after);
    }
    table.add_row(
        {common::format_percent(failure, 1),
         std::to_string(result.converged_after),
         common::format_percent(
             static_cast<double>(result.converged_after) /
                 std::max(healthy_iterations, 1.0) -
                 1.0,
             1),
         result.converged ? "yes" : "no",
         common::format_double(result.final_test_accuracy, 4)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace snap;
  const auto cfg = bench::sim_config(60, 3.0);
  bench::print_run_header("Fig. 9 stragglers", cfg);

  const experiments::Scenario scenario(cfg);

  sweep_policy(scenario, core::StragglerPolicy::kReweight,
               "Fig. 9 — SNAP, reweight straggler policy (default; the "
               "paper's dropout intuition)");
  sweep_policy(scenario, core::StragglerPolicy::kStaleValues,
               "Fig. 9 ablation — stale-values policy (the paper's "
               "literal text)");

  std::cout << "\nPaper shape targets: ~0% slowdown at 1% failures, "
               "~12% at 5%, always convergent. The reweight policy "
               "meets (exceeds) this; the stale-values reading degrades "
               "sharply because stale anchors perturb EXTRA's "
               "telescoped invariant — see EXPERIMENTS.md.\n";
  return 0;
}

// Reproduces Fig. 2 — "How weights change during the iteration".
//
// Paper setup (§IV-C1): iteration (8) on a toy network of 3 servers
// training the 784–30–10 fully connected network on MNIST, samples
// randomly allocated to servers. Reported:
//   (a) percentage of parameters unchanged in an iteration,
//   (b) log-CDF of the parameter difference |x^{k+1} − x^k|
//       (iteration 1 vs after 20 iterations),
//   (c) log-CDF of the parameter change ratio |Δx|/|x|.
//
// Paper's qualitative claims to check: >30% unchanged from the very
// first iterations, rising toward ~98%; >90% of first-iteration
// differences below 1e-3; >94% of change ratios below 10%.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "consensus/weight_matrix.hpp"
#include "core/extra.hpp"
#include "data/partition.hpp"
#include "data/synthetic_mnist.hpp"
#include "experiments/report.hpp"
#include "ml/mlp.hpp"
#include "topology/generators.hpp"

namespace {

using namespace snap;

/// Fraction of `values` that are <= bound.
double cdf_at(const std::vector<double>& values, double bound) {
  std::size_t count = 0;
  for (const double v : values) {
    if (v <= bound) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

void print_log_cdf(const std::string& title,
                   const std::vector<double>& values) {
  std::cout << "# " << title << "  (value  fraction<=value)\n";
  for (const double bound :
       {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0}) {
    std::cout << "  " << bound << "  "
              << common::format_double(cdf_at(values, bound), 4) << '\n';
  }
}

}  // namespace

int main() {
  using namespace snap;
  const auto scale = bench::scaled(1'800);

  std::cout << "SNAP reproduction bench: Fig. 2 parameter evolution\n"
            << "3 servers (K_3), MLP 784-30-10, " << scale
            << " synthetic-MNIST samples, random allocation\n";

  data::SyntheticMnistConfig mnist_cfg;
  mnist_cfg.train_samples = scale;
  mnist_cfg.test_samples = 16;  // unused here
  const auto mnist = data::make_synthetic_mnist(mnist_cfg);

  common::Rng rng(2020);
  auto shards = data::partition_uniform_random(mnist.train, 3, rng);

  const ml::Mlp model{ml::MlpConfig{}};
  const auto graph = topology::make_complete(3);
  const linalg::Matrix w = consensus::max_degree_weights(graph);

  common::Rng init_rng = rng.fork("init");
  const linalg::Vector x0 = model.initial_params(init_rng);
  core::ExtraIteration extra(
      w, std::vector<linalg::Vector>(3, x0), /*alpha=*/0.5,
      [&](std::size_t node, const linalg::Vector& x) {
        return model.gradient(x, shards[node]);
      });

  constexpr std::size_t kIterations = 25;
  std::vector<double> unchanged_pct;
  std::vector<double> diff_iter1;
  std::vector<double> diff_iter21;
  std::vector<double> ratio_iter1;
  std::vector<double> ratio_iter21;

  std::vector<linalg::Vector> previous;
  for (std::size_t node = 0; node < 3; ++node) {
    previous.push_back(extra.params(node));
  }

  std::vector<double> subsingle_pct;
  for (std::size_t k = 1; k <= kIterations; ++k) {
    extra.step();
    std::size_t unchanged = 0;
    std::size_t subsingle = 0;
    std::size_t total = 0;
    std::vector<double>* diff_sink =
        k == 1 ? &diff_iter1 : (k == 21 ? &diff_iter21 : nullptr);
    std::vector<double>* ratio_sink =
        k == 1 ? &ratio_iter1 : (k == 21 ? &ratio_iter21 : nullptr);
    for (std::size_t node = 0; node < 3; ++node) {
      const linalg::Vector& now = extra.params(node);
      const linalg::Vector& before = previous[node];
      for (std::size_t p = 0; p < now.size(); ++p) {
        const double diff = std::abs(now[p] - before[p]);
        // "Unchanged" at wire granularity: the paper's testbed serializes
        // parameters whose updates below float32 resolution vanish.
        // Structural zeros (all-zero input pixels ⇒ exactly-zero
        // first-layer gradients) are unchanged even in double precision.
        if (diff == 0.0) ++unchanged;
        if (static_cast<float>(now[p]) == static_cast<float>(before[p])) {
          ++subsingle;
        }
        ++total;
        if (diff_sink != nullptr) diff_sink->push_back(diff);
        if (ratio_sink != nullptr) {
          const double denom = std::abs(before[p]);
          ratio_sink->push_back(denom > 0.0 ? diff / denom
                                            : (diff > 0.0 ? 1.0 : 0.0));
        }
      }
      previous[node] = now;
    }
    unchanged_pct.push_back(100.0 * static_cast<double>(unchanged) /
                            static_cast<double>(total));
    subsingle_pct.push_back(100.0 * static_cast<double>(subsingle) /
                            static_cast<double>(total));
  }

  experiments::print_banner(std::cout, "Fig. 2(a) % unchanged parameters");
  std::cout << "# pct_unchanged: bit-identical in double precision "
               "(structural zeros).\n"
               "# pct_sub_f32:   additionally counts updates below "
               "float32 resolution —\n"
               "#                the granularity at which the paper's "
               "testbed arithmetic\n"
               "#                registers 'no change'.\n"
               "# iteration  pct_unchanged  pct_sub_f32\n";
  for (std::size_t k = 0; k < unchanged_pct.size(); ++k) {
    std::cout << "  " << (k + 1) << "  "
              << common::format_double(unchanged_pct[k], 2) << "  "
              << common::format_double(subsingle_pct[k], 2) << '\n';
  }

  experiments::print_banner(std::cout, "Fig. 2(b) log-CDF of |Δx|");
  print_log_cdf("iteration 1", diff_iter1);
  print_log_cdf("iteration 21", diff_iter21);

  experiments::print_banner(std::cout, "Fig. 2(c) log-CDF of |Δx|/|x|");
  print_log_cdf("iteration 1", ratio_iter1);
  print_log_cdf("iteration 21", ratio_iter21);

  std::cout << "\nPaper shape targets: >30% unchanged early; "
               ">90% of first-iteration diffs < 1e-3; >94% of change "
               "ratios < 0.1; both CDFs shift left by iteration 21.\n";
  return 0;
}

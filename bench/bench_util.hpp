// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

namespace snap::bench {

/// Reads an environment scale factor (SNAP_BENCH_SCALE). 1.0 = the
/// default workload sizes documented in EXPERIMENTS.md; smaller values
/// shrink sample budgets for quick smoke runs.
inline double bench_scale() {
  if (const char* raw = std::getenv("SNAP_BENCH_SCALE")) {
    const double value = std::atof(raw);
    if (value > 0.0) return value;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base) {
  const double value = static_cast<double>(base) * bench_scale();
  return value < 1.0 ? 1 : static_cast<std::size_t>(value);
}

/// The §V-B large-scale simulation configuration: SVM on synthetic
/// credit data, random connected topology. Paper defaults: 60 servers,
/// average node degree 3.
inline experiments::ScenarioConfig sim_config(std::size_t nodes,
                                              double degree,
                                              std::uint64_t seed = 2020) {
  experiments::ScenarioConfig cfg;
  cfg.workload = experiments::Workload::kCreditSvm;
  cfg.nodes = nodes;
  cfg.average_degree = degree;
  cfg.train_samples = scaled(12'000);
  cfg.test_samples = scaled(3'000);
  cfg.alpha = 0.3;
  cfg.convergence.loss_tolerance = 1e-3;
  cfg.convergence.consensus_tolerance = 1e-2;
  cfg.convergence.window = 5;
  cfg.convergence.min_iterations = 20;
  cfg.convergence.max_iterations = 500;
  cfg.weight_optimizer.max_iterations = 150;
  // Paper §V setting: APE budget = 10% of the mean |parameter|,
  // anchored once the SVM weights have grown to their working scale.
  cfg.ape.initial_budget_fraction = 0.10;
  cfg.ape_warmup_iterations = 40;
  cfg.seed = seed;
  return cfg;
}

/// Target-loss convergence criteria for cross-scheme sweeps: every
/// scheme runs until its aggregate loss reaches the centralized
/// converged loss × (1 + margin). Comparable across schemes by
/// construction (a plateau can fire at a worse loss under filtering or
/// link failures and would invert comparisons).
inline core::ConvergenceCriteria target_criteria(
    const experiments::Scenario& scenario, double margin = 0.05,
    std::size_t max_iterations = 800) {
  core::ConvergenceCriteria criteria = scenario.config().convergence;
  criteria.target_loss = scenario.reference_loss() * (1.0 + margin);
  criteria.max_iterations = max_iterations;
  return criteria;
}

/// Accuracy-target convergence criteria — the paper's operative notion
/// ("same accuracy performance as centralized training"): a scheme has
/// converged once its test accuracy reaches the centralized reference
/// minus `slack`. Under this bar the APE filter's small loss bias is
/// invisible, which is exactly the regime in which the paper's headline
/// communication savings hold. See EXPERIMENTS.md for the comparison
/// with the stricter equal-loss bar.
inline core::ConvergenceCriteria accuracy_criteria(
    const experiments::Scenario& scenario, double slack = 0.005,
    std::size_t max_iterations = 800) {
  core::ConvergenceCriteria criteria = scenario.config().convergence;
  criteria.target_accuracy = scenario.reference_accuracy() - slack;
  criteria.max_iterations = max_iterations;
  return criteria;
}

inline void print_run_header(const std::string& name,
                             const experiments::ScenarioConfig& cfg) {
  std::cout << "SNAP reproduction bench: " << name << "\n"
            << "seed=" << cfg.seed << " bench_scale=" << bench_scale()
            << " (set SNAP_BENCH_SCALE to shrink/grow workloads)\n";
}

}  // namespace snap::bench

// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

namespace snap::bench {

/// One JSON scalar, pre-serialized on construction. Numbers keep full
/// round-trip precision; non-finite doubles become null (JSON has no
/// NaN/Inf); strings are escaped.
class JsonValue {
 public:
  JsonValue(double value) {  // NOLINT(google-explicit-constructor)
    if (!std::isfinite(value)) {
      text_ = "null";
      return;
    }
    std::ostringstream os;
    os.precision(17);
    os << value;
    text_ = os.str();
  }
  JsonValue(std::uint64_t value)  // NOLINT(google-explicit-constructor)
      : text_(std::to_string(value)) {}
  JsonValue(int value)  // NOLINT(google-explicit-constructor)
      : text_(std::to_string(value)) {}
  JsonValue(bool value)  // NOLINT(google-explicit-constructor)
      : text_(value ? "true" : "false") {}
  JsonValue(const char* value)  // NOLINT(google-explicit-constructor)
      : text_(escaped(value)) {}
  JsonValue(const std::string& value)  // NOLINT(google-explicit-constructor)
      : text_(escaped(value)) {}

  const std::string& text() const noexcept { return text_; }

 private:
  static std::string escaped(const std::string& raw) {
    std::string out = "\"";
    for (const char c : raw) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

  std::string text_;
};

/// Machine-readable results sink for the benches: one flat JSON document
/// of scalar metadata plus named sections, each an array of flat row
/// objects. Sections and fields keep insertion order, so diffs between
/// runs stay line-stable. No external JSON dependency.
class JsonDoc {
 public:
  using Fields = std::vector<std::pair<std::string, JsonValue>>;

  void add_meta(const std::string& key, JsonValue value) {
    meta_.emplace_back(key, std::move(value));
  }

  /// Appends one row to `section` (created on first use).
  void add_row(const std::string& section, Fields fields) {
    for (auto& [name, rows] : sections_) {
      if (name == section) {
        rows.push_back(std::move(fields));
        return;
      }
    }
    sections_.push_back({section, {std::move(fields)}});
  }

  std::string dump() const {
    std::ostringstream os;
    os << "{\n";
    bool first = true;
    for (const auto& [key, value] : meta_) {
      if (!first) os << ",\n";
      first = false;
      os << "  " << JsonValue(key).text() << ": " << value.text();
    }
    for (const auto& [name, rows] : sections_) {
      if (!first) os << ",\n";
      first = false;
      os << "  " << JsonValue(name).text() << ": [\n";
      for (std::size_t r = 0; r < rows.size(); ++r) {
        os << "    {";
        for (std::size_t f = 0; f < rows[r].size(); ++f) {
          if (f > 0) os << ", ";
          os << JsonValue(rows[r][f].first).text() << ": "
             << rows[r][f].second.text();
        }
        os << (r + 1 < rows.size() ? "},\n" : "}\n");
      }
      os << "  ]";
    }
    os << "\n}\n";
    return os.str();
  }

  /// Writes the document to `path`; a failure warns on stderr instead of
  /// aborting the bench (the human-readable tables already printed).
  bool write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return false;
    }
    out << dump();
    std::cout << "\nmachine-readable results: " << path << "\n";
    return true;
  }

 private:
  Fields meta_;
  std::vector<std::pair<std::string, std::vector<Fields>>> sections_;
};

/// Reads an environment scale factor (SNAP_BENCH_SCALE). 1.0 = the
/// default workload sizes documented in EXPERIMENTS.md; smaller values
/// shrink sample budgets for quick smoke runs.
inline double bench_scale() {
  if (const char* raw = std::getenv("SNAP_BENCH_SCALE")) {
    const double value = std::atof(raw);
    if (value > 0.0) return value;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base) {
  const double value = static_cast<double>(base) * bench_scale();
  return value < 1.0 ? 1 : static_cast<std::size_t>(value);
}

/// The §V-B large-scale simulation configuration: SVM on synthetic
/// credit data, random connected topology. Paper defaults: 60 servers,
/// average node degree 3.
inline experiments::ScenarioConfig sim_config(std::size_t nodes,
                                              double degree,
                                              std::uint64_t seed = 2020) {
  experiments::ScenarioConfig cfg;
  cfg.workload = experiments::Workload::kCreditSvm;
  cfg.nodes = nodes;
  cfg.average_degree = degree;
  cfg.train_samples = scaled(12'000);
  cfg.test_samples = scaled(3'000);
  cfg.alpha = 0.3;
  cfg.convergence.loss_tolerance = 1e-3;
  cfg.convergence.consensus_tolerance = 1e-2;
  cfg.convergence.window = 5;
  cfg.convergence.min_iterations = 20;
  cfg.convergence.max_iterations = 500;
  cfg.weight_optimizer.max_iterations = 150;
  // Paper §V setting: APE budget = 10% of the mean |parameter|,
  // anchored once the SVM weights have grown to their working scale.
  cfg.ape.initial_budget_fraction = 0.10;
  cfg.ape_warmup_iterations = 40;
  cfg.seed = seed;
  return cfg;
}

/// Target-loss convergence criteria for cross-scheme sweeps: every
/// scheme runs until its aggregate loss reaches the centralized
/// converged loss × (1 + margin). Comparable across schemes by
/// construction (a plateau can fire at a worse loss under filtering or
/// link failures and would invert comparisons).
inline core::ConvergenceCriteria target_criteria(
    const experiments::Scenario& scenario, double margin = 0.05,
    std::size_t max_iterations = 800) {
  core::ConvergenceCriteria criteria = scenario.config().convergence;
  criteria.target_loss = scenario.reference_loss() * (1.0 + margin);
  criteria.max_iterations = max_iterations;
  return criteria;
}

/// Accuracy-target convergence criteria — the paper's operative notion
/// ("same accuracy performance as centralized training"): a scheme has
/// converged once its test accuracy reaches the centralized reference
/// minus `slack`. Under this bar the APE filter's small loss bias is
/// invisible, which is exactly the regime in which the paper's headline
/// communication savings hold. See EXPERIMENTS.md for the comparison
/// with the stricter equal-loss bar.
inline core::ConvergenceCriteria accuracy_criteria(
    const experiments::Scenario& scenario, double slack = 0.005,
    std::size_t max_iterations = 800) {
  core::ConvergenceCriteria criteria = scenario.config().convergence;
  criteria.target_accuracy = scenario.reference_accuracy() - slack;
  criteria.max_iterations = max_iterations;
  return criteria;
}

inline void print_run_header(const std::string& name,
                             const experiments::ScenarioConfig& cfg) {
  std::cout << "SNAP reproduction bench: " << name << "\n"
            << "seed=" << cfg.seed << " bench_scale=" << bench_scale()
            << " (set SNAP_BENCH_SCALE to shrink/grow workloads)\n";
}

}  // namespace snap::bench

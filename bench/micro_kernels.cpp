// google-benchmark micro-kernels for SNAP's hot paths, plus the §IV-C
// frame-format analysis (format A vs B crossover at N = 2M + 1).
#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/terngrad.hpp"
#include "common/rng.hpp"
#include "consensus/weight_matrix.hpp"
#include "consensus/weight_optimizer.hpp"
#include "data/synthetic_credit.hpp"
#include "linalg/eigen.hpp"
#include "ml/linear_svm.hpp"
#include "ml/mlp.hpp"
#include "net/frame.hpp"
#include "topology/generators.hpp"

namespace {

using namespace snap;

void BM_JacobiEigenvalues(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  linalg::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      const double v = rng.normal();
      m(r, c) = v;
      m(c, r) = v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigenvalues_symmetric(m));
  }
}
BENCHMARK(BM_JacobiEigenvalues)->Arg(20)->Arg(60)->Arg(100);

void BM_MaxDegreeWeights(benchmark::State& state) {
  common::Rng rng(2);
  const auto g = topology::make_random_connected(
      static_cast<std::size_t>(state.range(0)), 3.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(consensus::max_degree_weights(g));
  }
}
BENCHMARK(BM_MaxDegreeWeights)->Arg(60)->Arg(200);

void BM_WeightOptimization(benchmark::State& state) {
  common::Rng rng(3);
  const auto g = topology::make_random_connected(
      static_cast<std::size_t>(state.range(0)), 3.0, rng);
  consensus::WeightOptimizerConfig cfg;
  cfg.max_iterations = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(consensus::minimize_slem(g, cfg));
  }
}
BENCHMARK(BM_WeightOptimization)->Arg(20)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_FrameEncode(benchmark::State& state) {
  const auto total = static_cast<std::uint32_t>(state.range(0));
  const auto sent = static_cast<std::size_t>(state.range(1));
  common::Rng rng(4);
  const auto idx = rng.sample_without_replacement(total, sent);
  std::vector<std::size_t> sorted(idx.begin(), idx.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<net::ParamUpdate> updates;
  for (const auto i : sorted) {
    updates.push_back({static_cast<std::uint32_t>(i), rng.normal()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode_update_frame(total, updates));
  }
}
BENCHMARK(BM_FrameEncode)
    ->Args({23'860, 23'860})
    ->Args({23'860, 1'000})
    ->Args({23'860, 10});

void BM_FrameDecode(benchmark::State& state) {
  const auto total = static_cast<std::uint32_t>(state.range(0));
  const auto sent = static_cast<std::size_t>(state.range(1));
  common::Rng rng(5);
  const auto idx = rng.sample_without_replacement(total, sent);
  std::vector<std::size_t> sorted(idx.begin(), idx.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<net::ParamUpdate> updates;
  for (const auto i : sorted) {
    updates.push_back({static_cast<std::uint32_t>(i), rng.normal()});
  }
  const auto bytes = net::encode_update_frame(total, updates);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_update_frame(bytes));
  }
}
BENCHMARK(BM_FrameDecode)->Args({23'860, 23'860})->Args({23'860, 10});

void BM_SvmGradient(benchmark::State& state) {
  data::SyntheticCreditConfig cfg;
  cfg.samples = static_cast<std::size_t>(state.range(0));
  const auto dataset = data::make_synthetic_credit(cfg);
  const ml::LinearSvm svm{ml::LinearSvmConfig{}};
  common::Rng rng(6);
  const linalg::Vector params = svm.initial_params(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svm.loss_gradient(params, dataset));
  }
}
BENCHMARK(BM_SvmGradient)->Arg(1'000)->Arg(10'000);

void BM_MlpGradient(benchmark::State& state) {
  common::Rng rng(7);
  data::Dataset d(784, 10);
  std::vector<double> row(784);
  for (int s = 0; s < state.range(0); ++s) {
    for (double& px : row) px = rng.uniform();
    d.add(row, static_cast<std::size_t>(rng.uniform_u64(10)));
  }
  const ml::Mlp mlp{ml::MlpConfig{}};
  common::Rng init(8);
  const linalg::Vector params = mlp.initial_params(init);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.loss_gradient(params, d));
  }
}
BENCHMARK(BM_MlpGradient)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_Ternarize(benchmark::State& state) {
  common::Rng rng(9);
  linalg::Vector g(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = rng.normal();
  common::Rng draw(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::ternarize(g, draw));
  }
}
BENCHMARK(BM_Ternarize)->Arg(23'860);

void BM_AllPairsHops(benchmark::State& state) {
  common::Rng rng(11);
  const auto g = topology::make_random_connected(
      static_cast<std::size_t>(state.range(0)), 3.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.all_pairs_hops());
  }
}
BENCHMARK(BM_AllPairsHops)->Arg(100);

}  // namespace

BENCHMARK_MAIN();

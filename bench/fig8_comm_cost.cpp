// Reproduces Fig. 8 — total communication cost vs network
// characteristics, including the paper's headline claim.
//
// Paper setup (§V-B): SVM on credit data; total hop-weighted traffic
// until convergence (§II-B cost: bytes × physical hops) for SNAP,
// SNAP-0, SNO, PS, TernGrad, sweeping
//   (a) the number of edge servers (degree 3),
//   (b) the average node degree in a sparse regime,
//   (c) the average node degree in a dense regime.
//
// Paper shape targets: costs grow with N for every scheme but far
// slower for SNAP (headline: at 100 servers SNAP ≈ 0.4% of TernGrad and
// ≈ 0.96% of PS — i.e. 99.6% lower than TernGrad); in sparse networks
// higher degree lowers total cost and even SNO beats PS; in dense
// networks cost rises with degree and SNAP can exceed PS.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

namespace {

using namespace snap;
using experiments::Scheme;

const std::vector<Scheme> kSchemes{Scheme::kSnap, Scheme::kSnap0,
                                   Scheme::kSno, Scheme::kPs,
                                   Scheme::kTernGrad};

struct SweepPoint {
  std::size_t nodes;
  double degree;
  std::vector<core::TrainResult> results;
};

SweepPoint run_point(std::size_t nodes, double degree) {
  SweepPoint point{nodes, degree, {}};
  const experiments::Scenario scenario(bench::sim_config(nodes, degree));
  const auto criteria = bench::accuracy_criteria(scenario);
  for (const Scheme s : kSchemes) {
    point.results.push_back(scenario.run(s, criteria));
  }
  return point;
}

void print_sweep(const std::string& banner, const std::string& x_label,
                 const std::vector<SweepPoint>& points) {
  experiments::print_banner(std::cout, banner);
  std::vector<std::string> headers{x_label};
  for (const Scheme s : kSchemes) {
    headers.emplace_back(experiments::scheme_name(s));
  }
  experiments::Table table(headers);
  for (const auto& point : points) {
    std::vector<std::string> row{x_label == "servers"
                                     ? std::to_string(point.nodes)
                                     : std::to_string(int(point.degree))};
    for (const auto& result : point.results) {
      row.push_back(common::format_bytes(double(result.total_cost)));
    }
    table.add_row(row);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace snap;
  bench::print_run_header("Fig. 8 communication cost",
                          bench::sim_config(60, 3.0));

  std::vector<SweepPoint> scale_sweep;
  for (const std::size_t n : {20u, 40u, 60u, 80u, 100u}) {
    scale_sweep.push_back(run_point(n, 3.0));
  }
  print_sweep("Fig. 8(a) total cost vs network scale (degree 3)",
              "servers", scale_sweep);

  // Headline claim at N = 100.
  const SweepPoint& big = scale_sweep.back();
  const double snap_cost = double(big.results[0].total_cost);
  const double ps_cost = double(big.results[3].total_cost);
  const double terngrad_cost = double(big.results[4].total_cost);
  std::cout << "\nHeadline @100 servers: SNAP/TernGrad = "
            << common::format_percent(snap_cost / terngrad_cost, 2)
            << " (paper: 0.4%), SNAP/PS = "
            << common::format_percent(snap_cost / ps_cost, 2)
            << " (paper: 0.96%)\n";

  std::vector<SweepPoint> sparse_sweep;
  for (const double d : {2.0, 3.0, 4.0, 5.0, 6.0}) {
    sparse_sweep.push_back(run_point(60, d));
  }
  print_sweep("Fig. 8(b) total cost vs degree — sparse regime (60 servers)",
              "degree", sparse_sweep);

  std::vector<SweepPoint> dense_sweep;
  for (const double d : {10.0, 20.0, 30.0, 40.0}) {
    dense_sweep.push_back(run_point(60, d));
  }
  print_sweep("Fig. 8(c) total cost vs degree — dense regime (60 servers)",
              "degree", dense_sweep);

  std::cout << "\nPaper shape targets: SNAP's growth with N is far "
               "flatter than PS/TernGrad; sparse regime cost falls with "
               "degree (SNO < PS); dense regime cost rises with degree "
               "and the peer schemes lose their advantage.\n";
  return 0;
}

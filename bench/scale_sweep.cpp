// Sparse-core scaling sweep (ROADMAP item 1 deliverable).
//
// Runs the full SNAP trainer at n ∈ {10², 10³, 10⁴, 10⁵} edge servers
// on the sync and gossip fabrics and reports rounds/sec and bytes/round
// per scale. The point of the sweep is the *asymptotic shape*: with the
// CSR weight matrices, slot-indexed node state, lazy hop routing, and
// iterative spectral queries, per-round work is O(|E|·dim) and memory
// O(|E| + n·dim) — no O(n²) term anywhere on the path, so the 10⁵ row
// completes on a laptop instead of exhausting address space.
//
// --max-n=<N> caps the sweep (CI smoke runs --max-n=1000); rounds are
// fixed (min == max iterations) so the timing is a pure per-round rate.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "consensus/sparse_weight_matrix.hpp"
#include "core/snap_trainer.hpp"
#include "data/partition.hpp"
#include "data/synthetic_credit.hpp"
#include "ml/linear_svm.hpp"
#include "topology/generators.hpp"

namespace {

constexpr std::size_t kRounds = 20;
constexpr double kAverageDegree = 4.0;

struct SweepRow {
  std::string fabric;
  std::size_t nodes = 0;
  std::size_t rounds = 0;
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  double bytes_per_round = 0.0;
  double final_loss = 0.0;
};

SweepRow run_once(const std::string& fabric_name,
                  snap::runtime::FabricKind fabric, std::size_t n) {
  snap::common::Rng rng(2020 + n);
  const snap::topology::Graph graph =
      snap::topology::make_random_connected(n, kAverageDegree, rng);
  const snap::consensus::SparseWeightMatrix w =
      snap::consensus::SparseWeightMatrix::max_degree(graph);

  snap::data::SyntheticCreditConfig data_config;
  data_config.samples = std::max<std::size_t>(2 * n, 2000);
  const snap::data::Dataset all = snap::data::make_synthetic_credit(data_config);
  snap::data::SyntheticCreditConfig test_config;
  test_config.samples = 1000;
  test_config.seed = 7;
  const snap::data::Dataset test = snap::data::make_synthetic_credit(test_config);

  snap::common::Rng shard_rng = rng.fork("shards");
  std::vector<snap::data::Dataset> shards =
      snap::data::partition_equal(all, n, shard_rng);

  const snap::ml::LinearSvm model{snap::ml::LinearSvmConfig{}};

  snap::core::SnapTrainerConfig config;
  config.alpha = 0.3;
  config.convergence.min_iterations = kRounds;
  config.convergence.max_iterations = kRounds;
  config.ape_warmup_iterations = 5;
  config.threads = 0;  // one per hardware thread
  config.fabric = fabric;
  config.seed = 17;

  snap::core::SnapTrainer trainer(graph, w, model, std::move(shards), config);
  const auto start = std::chrono::steady_clock::now();
  const snap::core::TrainResult result = trainer.train(test);
  const auto stop = std::chrono::steady_clock::now();

  SweepRow row;
  row.fabric = fabric_name;
  row.nodes = n;
  row.rounds = result.iterations.size();
  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.rounds_per_sec =
      row.seconds > 0.0 ? static_cast<double>(row.rounds) / row.seconds : 0.0;
  row.bytes_per_round =
      row.rounds > 0
          ? static_cast<double>(result.total_bytes) /
                static_cast<double>(row.rounds)
          : 0.0;
  row.final_loss = result.final_train_loss;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_n = 100'000;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--max-n=", 8) == 0) {
      max_n = static_cast<std::size_t>(std::atoll(argv[a] + 8));
    } else {
      std::cerr << "usage: scale_sweep [--max-n=N]\n";
      return 2;
    }
  }

  std::cout << "SNAP sparse-core scale sweep (degree " << kAverageDegree
            << ", " << kRounds << " fixed rounds, max n " << max_n << ")\n\n";
  std::cout << "fabric   nodes     rounds/sec   bytes/round    final loss\n";

  snap::bench::JsonDoc doc;
  doc.add_meta("bench", "scale_sweep");
  doc.add_meta("average_degree", kAverageDegree);
  doc.add_meta("rounds", static_cast<std::uint64_t>(kRounds));
  doc.add_meta("max_n", static_cast<std::uint64_t>(max_n));

  const std::vector<std::size_t> scales = {100, 1'000, 10'000, 100'000};
  const std::vector<std::pair<std::string, snap::runtime::FabricKind>>
      fabrics = {{"sync", snap::runtime::FabricKind::kSync},
                 {"gossip", snap::runtime::FabricKind::kGossip}};
  for (const auto& [name, kind] : fabrics) {
    for (const std::size_t n : scales) {
      if (n > max_n) continue;
      const SweepRow row = run_once(name, kind, n);
      std::printf("%-8s %-9zu %-12.2f %-14.1f %.6f\n", row.fabric.c_str(),
                  row.nodes, row.rounds_per_sec, row.bytes_per_round,
                  row.final_loss);
      doc.add_row("scale_sweep",
                  {{"fabric", row.fabric},
                   {"nodes", static_cast<std::uint64_t>(row.nodes)},
                   {"rounds", static_cast<std::uint64_t>(row.rounds)},
                   {"seconds", row.seconds},
                   {"rounds_per_sec", row.rounds_per_sec},
                   {"bytes_per_round", row.bytes_per_round},
                   {"final_loss", row.final_loss}});
    }
  }

  doc.write_file("BENCH_scale_sweep.json");
  return 0;
}

// Gossip-fabric bench: randomized partial activations vs the shared
// clock, at equal communication budget.
//
// The sync fabric fires every link every round; the gossip fabric's
// seeded scheduler activates a matching (or a small per-node fan-out)
// and leaves the rest of the graph silent, so each round moves a
// fraction of the bytes. The question the paper's edge setting asks is
// not loss-per-round but loss-per-byte (and loss-per-simulated-second):
// give every variant the byte budget the sync run spent, let gossip run
// as many extra rounds as that budget buys, and compare where each
// lands.
//
//   1. loss-vs-bytes / loss-vs-sim-seconds curves — per-round series
//      for sync, async, gossip(matching), gossip(push-pull) on the
//      §V-B workload, written to BENCH_gossip_vs_sync.json for plots.
//   2. equal-budget table — loss at the sync byte budget and at the
//      sync sim-seconds budget for each variant.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "runtime/gossip.hpp"

namespace {

using namespace snap;

struct Variant {
  std::string name;
  runtime::FabricKind fabric = runtime::FabricKind::kSync;
  runtime::GossipMode mode = runtime::GossipMode::kMatching;
  std::size_t fanout = 1;
  std::size_t rounds = 0;  // horizon; gossip gets a longer leash
};

struct Curve {
  core::TrainResult result;
  std::vector<std::uint64_t> cum_bytes;
  std::vector<double> cum_seconds;
};

Curve run_variant(const Variant& v) {
  auto cfg = bench::sim_config(20, 3.0);
  cfg.convergence.loss_tolerance = 0.0;  // fixed horizon per variant
  cfg.convergence.max_iterations = v.rounds;
  cfg.fabric = v.fabric;
  cfg.gossip.mode = v.mode;
  cfg.gossip.fanout = v.fanout;
  const experiments::Scenario scenario(cfg);
  Curve c{scenario.run(experiments::Scheme::kSnap), {}, {}};
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  for (const auto& it : c.result.iterations) {
    bytes += it.bytes;
    seconds += it.sim_seconds;
    c.cum_bytes.push_back(bytes);
    c.cum_seconds.push_back(seconds);
  }
  return c;
}

/// Loss at the first round whose cumulative tally reaches `budget`
/// (linear search; series are short). Falls back to the final loss if
/// the horizon never spends the budget — flagged in the table.
template <typename Tally, typename Budget>
std::pair<double, std::size_t> loss_at_budget(const Curve& c,
                                              const std::vector<Tally>& cum,
                                              Budget budget) {
  for (std::size_t k = 0; k < cum.size(); ++k) {
    if (cum[k] >= budget) return {c.result.iterations[k].train_loss, k + 1};
  }
  return {c.result.final_train_loss, cum.size()};
}

}  // namespace

int main() {
  std::cout << "SNAP reproduction bench: gossip activations vs full "
               "sync rounds at equal budget\nseed=2020 bench_scale="
            << bench::bench_scale() << "\n";

  // Sync sets the budget over 150 rounds; gossip moves roughly a
  // quarter of the bytes per round on this graph, so 8x the horizon
  // comfortably covers the same spend. Async shares the sync horizon
  // (it fires every link per round too).
  const std::vector<Variant> variants = {
      {"sync", runtime::FabricKind::kSync, runtime::GossipMode::kMatching, 1,
       150},
      {"async", runtime::FabricKind::kAsync, runtime::GossipMode::kMatching,
       1, 150},
      {"gossip-matching", runtime::FabricKind::kGossip,
       runtime::GossipMode::kMatching, 1, 1'200},
      {"gossip-pushpull", runtime::FabricKind::kGossip,
       runtime::GossipMode::kPushPull, 2, 600},
  };

  bench::JsonDoc json;
  json.add_meta("bench", "gossip_vs_sync");
  json.add_meta("seed", std::uint64_t{2020});
  json.add_meta("nodes", std::uint64_t{20});
  json.add_meta("average_degree", 3.0);
  json.add_meta("bench_scale", bench::bench_scale());

  std::vector<Curve> curves;
  for (const Variant& v : variants) {
    curves.push_back(run_variant(v));
    const Curve& c = curves.back();
    for (std::size_t k = 0; k < c.result.iterations.size(); ++k) {
      const auto& it = c.result.iterations[k];
      json.add_row("loss_curves",
                   {{"variant", v.name},
                    {"round", std::uint64_t{k + 1}},
                    {"cum_bytes", c.cum_bytes[k]},
                    {"cum_sim_seconds", c.cum_seconds[k]},
                    {"train_loss", it.train_loss},
                    {"links_activated", it.links_activated}});
    }
  }

  const Curve& sync = curves.front();
  const std::uint64_t byte_budget = sync.cum_bytes.back();
  const double seconds_budget = sync.cum_seconds.back();

  experiments::print_banner(
      std::cout,
      "equal budget: loss once each variant has spent the sync run's "
      "bytes (and its simulated seconds)");
  experiments::Table table({"variant", "rounds@bytes", "loss@bytes",
                            "rounds@secs", "loss@secs", "final loss",
                            "total MiB"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    const Curve& c = curves[i];
    const auto [loss_b, rounds_b] = loss_at_budget(c, c.cum_bytes,
                                                   byte_budget);
    const auto [loss_s, rounds_s] = loss_at_budget(c, c.cum_seconds,
                                                   seconds_budget);
    table.add_row(
        {v.name, std::to_string(rounds_b),
         common::format_double(loss_b, 6), std::to_string(rounds_s),
         common::format_double(loss_s, 6),
         common::format_double(c.result.final_train_loss, 6),
         common::format_double(
             double(c.cum_bytes.back()) / (1024.0 * 1024.0), 2)});
    json.add_row("equal_budget",
                 {{"variant", v.name},
                  {"byte_budget", byte_budget},
                  {"rounds_at_byte_budget", std::uint64_t{rounds_b}},
                  {"loss_at_byte_budget", loss_b},
                  {"seconds_budget", seconds_budget},
                  {"rounds_at_seconds_budget", std::uint64_t{rounds_s}},
                  {"loss_at_seconds_budget", loss_s},
                  {"final_loss", c.result.final_train_loss},
                  {"total_bytes", c.cum_bytes.back()}});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: at the sync byte budget the gossip "
               "variants have run several times more rounds and sit at a "
               "comparable (or better) loss — partial activations buy "
               "more mixing steps per byte. Per round they mix less, so "
               "their loss-vs-round curves trail; the crossover lives in "
               "the loss-vs-bytes series this bench emits.\n";

  json.write_file("BENCH_gossip_vs_sync.json");
  return 0;
}

// Runtime-layer bench: the event-driven async fabric vs the paper's
// shared-clock rounds.
//
// Two questions:
//  1. Fidelity — with homogeneous compute and fast links the async
//     runtime must reproduce the sync loss trajectory (the event
//     interleaving collapses to the shared-clock schedule).
//  2. The paper's motivation, §I — under heterogeneous edge servers the
//     parameter server's round is a barrier (slowest worker + incast at
//     the PS NIC), while SNAP's peers free-run and mix with whatever
//     neighbor frames are freshest. Fixed round budget, identical
//     workload and node speeds: compare simulated wall-clock and the
//     staleness SNAP absorbs to win it.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "runtime/fabric.hpp"

int main() {
  using namespace snap;
  using experiments::Scheme;

  std::cout << "SNAP reproduction bench: async event-driven runtime vs "
               "sync rounds\nseed=2020 bench_scale="
            << bench::bench_scale() << "\n";

  experiments::ScenarioConfig base;
  base.nodes = 10;
  base.average_degree = 3.0;
  base.train_samples = bench::scaled(4'000);
  base.test_samples = bench::scaled(1'000);
  base.convergence.loss_tolerance = 0.0;  // fixed 40-round horizon
  base.convergence.max_iterations = 40;
  base.seed = 2020;
  base.async_timing.compute_s = 5e-3;
  base.async_timing.link_latency_s = 1e-3;
  base.async_timing.nic_bandwidth_bytes_per_s = 1e9 / 8.0;

  // --- 1. Fidelity: homogeneous async vs sync, per-scheme. -------------
  experiments::print_banner(
      std::cout,
      "fidelity: homogeneous compute, fast links — async must retrace "
      "the sync loss trajectory");
  experiments::Table fidelity({"scheme", "sync final loss",
                               "async final loss", "max |delta| over run",
                               "rounds"});
  for (const Scheme scheme : {Scheme::kSnap, Scheme::kPs}) {
    experiments::ScenarioConfig cfg = base;
    const experiments::Scenario sync_scenario(cfg);
    const auto sync = sync_scenario.run(scheme);
    cfg.fabric = runtime::FabricKind::kAsync;
    const experiments::Scenario async_scenario(cfg);
    const auto async = async_scenario.run(scheme);
    double max_delta = 0.0;
    const std::size_t rounds =
        std::min(sync.iterations.size(), async.iterations.size());
    for (std::size_t k = 0; k < rounds; ++k) {
      max_delta = std::max(max_delta,
                           std::abs(sync.iterations[k].train_loss -
                                    async.iterations[k].train_loss));
    }
    fidelity.add_row(
        {std::string(experiments::scheme_name(scheme)),
         common::format_double(sync.final_train_loss, 6),
         common::format_double(async.final_train_loss, 6),
         common::format_double(max_delta, 9), std::to_string(rounds)});
  }
  fidelity.print(std::cout);

  // --- 2. Heterogeneous wall-clock: SNAP paces locally, PS barriers. ---
  // Free-running EXTRA diverges once fast nodes mix persistently-skewed
  // views, so the decentralized schemes run with the default
  // neighborhood pacing gate: each node waits only for its own
  // neighbors' frames — no global barrier, no incast hub, no push-back
  // leg. The PS schemes are barriered by construction either way.
  experiments::print_banner(
      std::cout,
      "heterogeneity: slowest node 3x the fastest (+10% jitter), same "
      "40-round budget — simulated wall-clock to finish");
  experiments::Table hetero({"scheme", "fabric", "wall-clock", "vs SNAP",
                             "mean stale", "max stale", "final loss"});
  experiments::ScenarioConfig cfg = base;
  cfg.fabric = runtime::FabricKind::kAsync;
  cfg.async_timing.node_compute_s = runtime::linear_compute_spread(
      cfg.nodes, cfg.async_timing.compute_s, 2.0);
  cfg.async_timing.compute_jitter = 0.1;
  const experiments::Scenario scenario(cfg);
  double snap_time = 0.0;
  for (const Scheme scheme :
       {Scheme::kSnap, Scheme::kSno, Scheme::kPs, Scheme::kTernGrad}) {
    const auto result = scenario.run(scheme);
    double stale_sum = 0.0;
    std::uint64_t stale_max = 0;
    for (const auto& stat : result.iterations) {
      stale_sum += stat.mean_frame_staleness;
      stale_max = std::max(stale_max, stat.max_frame_staleness);
    }
    const double seconds = result.total_sim_seconds;
    if (scheme == Scheme::kSnap) snap_time = seconds;
    hetero.add_row(
        {std::string(experiments::scheme_name(scheme)), "async",
         common::format_double(seconds, 3) + " s",
         common::format_double(seconds / snap_time, 2) + "x",
         common::format_double(
             stale_sum / double(std::max<std::size_t>(
                             result.iterations.size(), 1)),
             2),
         std::to_string(stale_max),
         common::format_double(result.final_train_loss, 6)});
  }
  hetero.print(std::cout);

  std::cout << "\nExpected shape: async and sync trajectories coincide in "
               "part 1 (deltas at rounding noise). In part 2 every "
               "scheme's round is paced by the slowest node, but the PS "
               "schemes additionally pay the incast-serialized uploads "
               "into the server NIC plus the push-back leg every round — "
               "the decentralized schemes finish the same round budget "
               "earlier at the same final loss. (--free-run drops the "
               "pacing gate; EXTRA then diverges, which is why it is a "
               "knob and not the default.)\n";
  return 0;
}

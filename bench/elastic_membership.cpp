// Elastic-membership bench: nodes join, leave, and rejoin mid-run.
//
// Two experiments on the §V-B simulation workload:
//
//   1. Churn sweep — latent joiners arrive through the random arrival
//      chain while members gracefully leave and rejoin, at increasing
//      churn rates, on both fabrics. The membership timeline is a pure
//      function of (plan, seed, graph), so the sync and async rows of
//      one rate describe the identical schedule.
//
//   2. Warm-vs-cold ablation — one scheduled join at mid-run, equal
//      round budget. Warm: a live neighbor donates its model over a
//      STATE_SYNC frame (charged on the wire). Cold: the joiner starts
//      from x⁰ and drags the network average back. Reported as the mean
//      aggregate loss over the post-join recovery window, where the
//      equal-budget comparison lives (both arms share EXTRA's fixed
//      point eventually, §IV-C).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

namespace {

using namespace snap;

struct MembershipTotals {
  std::uint64_t joins = 0;
  std::uint64_t state_sync_bytes = 0;
  std::uint64_t final_membership = 0;
};

MembershipTotals totals_of(const core::TrainResult& result) {
  MembershipTotals t;
  for (const auto& it : result.iterations) {
    t.joins += it.nodes_joined;
    t.state_sync_bytes += it.state_sync_bytes;
  }
  if (!result.iterations.empty()) {
    t.final_membership = result.iterations.back().alive_nodes;
  }
  return t;
}

experiments::ScenarioConfig churn_config(runtime::FabricKind fabric,
                                         double churn_scale) {
  auto cfg = bench::sim_config(30, 3.0);
  cfg.convergence.max_iterations = 300;
  cfg.fabric = fabric;
  cfg.latent_joiners = 4;
  cfg.faults.join_probability = 0.02 * churn_scale;
  cfg.faults.leave_probability = 0.002 * churn_scale;
  cfg.faults.rejoin_probability = 0.05;
  return cfg;
}

void churn_sweep(bench::JsonDoc& json) {
  experiments::print_banner(
      std::cout,
      "Membership churn sweep — 30 initial members + 4 latent joiners; "
      "random joins/leaves/rejoins scaled together; identical schedule "
      "on both fabrics");
  experiments::Table table({"churn scale", "fabric", "final loss",
                            "accuracy", "joins", "state-sync",
                            "final members", "hop cost"});
  for (const double scale : {0.5, 1.0, 2.0}) {
    for (const auto fabric :
         {runtime::FabricKind::kSync, runtime::FabricKind::kAsync}) {
      const bool sync = fabric == runtime::FabricKind::kSync;
      const experiments::Scenario scenario(churn_config(fabric, scale));
      const auto result = scenario.run(experiments::Scheme::kSnap);
      const MembershipTotals t = totals_of(result);
      table.add_row({common::format_double(scale, 1), sync ? "sync" : "async",
                     common::format_double(result.final_train_loss, 5),
                     common::format_percent(result.final_test_accuracy, 1),
                     std::to_string(t.joins),
                     common::format_bytes(double(t.state_sync_bytes)),
                     std::to_string(t.final_membership),
                     common::format_bytes(double(result.total_cost))});
      json.add_row("churn_sweep",
                   {{"churn_scale", scale},
                    {"fabric", sync ? "sync" : "async"},
                    {"final_loss", result.final_train_loss},
                    {"final_accuracy", result.final_test_accuracy},
                    {"joins", t.joins},
                    {"state_sync_bytes", t.state_sync_bytes},
                    {"final_membership", t.final_membership},
                    {"hop_cost", std::uint64_t{result.total_cost}}});
    }
  }
  table.print(std::cout);
}

void warm_vs_cold(bench::JsonDoc& json) {
  experiments::print_banner(
      std::cout,
      "Warm-vs-cold ablation — one joiner at round 150 of 300, equal "
      "budget; post-join window = mean loss over rounds 150..300");
  experiments::Table table({"handoff", "post-join mean loss", "final loss",
                            "state-sync bytes"});
  for (const bool warm : {true, false}) {
    auto cfg = bench::sim_config(30, 3.0);
    cfg.convergence.max_iterations = 300;
    cfg.convergence.loss_tolerance = 0.0;  // fixed length: arms comparable
    cfg.latent_joiners = 1;
    cfg.faults.scheduled_joins.push_back({30, 150});
    cfg.warm_start_joins = warm;
    const experiments::Scenario scenario(cfg);
    const auto result = scenario.run(experiments::Scheme::kSnap);
    const MembershipTotals t = totals_of(result);
    double post_join_sum = 0.0;
    std::size_t post_join_rounds = 0;
    for (std::size_t k = 149; k < result.iterations.size(); ++k) {
      post_join_sum += result.iterations[k].train_loss;
      ++post_join_rounds;
    }
    const double post_join_mean =
        post_join_rounds == 0 ? 0.0
                              : post_join_sum / double(post_join_rounds);
    table.add_row({warm ? "warm (STATE_SYNC)" : "cold (x0)",
                   common::format_double(post_join_mean, 6),
                   common::format_double(result.final_train_loss, 6),
                   std::to_string(t.state_sync_bytes)});
    json.add_row("warm_vs_cold",
                 {{"warm", warm},
                  {"post_join_mean_loss", post_join_mean},
                  {"final_loss", result.final_train_loss},
                  {"state_sync_bytes", t.state_sync_bytes}});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace snap;
  const auto cfg = churn_config(runtime::FabricKind::kSync, 1.0);
  bench::print_run_header("elastic membership (join/leave/rejoin)", cfg);
  bench::JsonDoc json;
  json.add_meta("bench", "elastic_membership");
  json.add_meta("seed", std::uint64_t{cfg.seed});
  json.add_meta("bench_scale", bench::bench_scale());

  churn_sweep(json);
  warm_vs_cold(json);

  std::cout << "\nShape expectations: sync and async rows of one churn "
               "scale report the identical join count and state-sync "
               "bytes (the membership timeline is a pure function of "
               "plan, seed, and graph); heavier churn costs loss roughly "
               "in proportion to membership disruption; and the warm "
               "handoff beats the cold join over the post-join window "
               "at the price of one dense frame per join.\n";
  json.write_file("BENCH_elastic_membership.json");
  return 0;
}

// Ablations for the design choices DESIGN.md calls out:
//   A. mixing-matrix candidates — eq.(24) init vs problem (22) vs
//      problem (23) vs the combined SLEM objective (20), measured as
//      EXTRA iterations to consensus-optimum on a pure quadratic
//      problem (isolates mixing speed from ML noise);
//   B. APE budget sweep — the traffic/quality trade of Algorithm 1's
//      initial threshold;
//   C. frame-format policy — adaptive A/B selection vs fixing either
//      format, across withholding levels and the paper's two model
//      sizes.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "consensus/weight_matrix.hpp"
#include "consensus/weight_optimizer.hpp"
#include "core/extra.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "net/frame.hpp"
#include "topology/generators.hpp"

namespace {

using namespace snap;

/// Iterations for matrix-form EXTRA with mixing matrix `w` to drive a
/// random quadratic consensus problem within `tol` of its optimum.
std::size_t iterations_to_optimum(const linalg::Matrix& w,
                                  const topology::Graph& graph,
                                  double tol = 1e-6,
                                  std::size_t cap = 4000) {
  const std::size_t n = graph.node_count();
  common::Rng rng(123);
  std::vector<linalg::Vector> centers;
  linalg::Vector optimum(4);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Vector c(4);
    for (std::size_t d = 0; d < 4; ++d) c[d] = rng.normal(0.0, 1.0);
    optimum += c;
    centers.push_back(std::move(c));
  }
  optimum *= 1.0 / static_cast<double>(n);

  core::ExtraIteration extra(
      w, std::vector<linalg::Vector>(n, linalg::Vector(4)), /*alpha=*/0.3,
      [&](std::size_t node, const linalg::Vector& x) {
        linalg::Vector g = x;
        g -= centers[node];
        return g;
      });
  for (std::size_t k = 1; k <= cap; ++k) {
    extra.step();
    if (extra.consensus_residual() < tol &&
        linalg::max_abs_diff(extra.mean_params(), optimum) < tol) {
      return k;
    }
  }
  return cap;
}

void weight_candidate_ablation() {
  experiments::print_banner(
      std::cout, "Ablation A — mixing-matrix candidates (EXTRA iterations "
                 "to 1e-6 optimum, quadratic consensus)");
  experiments::Table table({"topology", "eq.(24) init", "min lambda2 (23)",
                            "max lambda_min (22)", "min SLEM (20)",
                            "selected"});
  struct Case {
    const char* name;
    topology::Graph graph;
  };
  common::Rng rng(5);
  std::vector<Case> cases;
  cases.push_back({"ring-16", topology::make_ring(16)});
  cases.push_back({"grid-4x5", topology::make_grid(4, 5)});
  cases.push_back(
      {"random-24-d3", topology::make_random_connected(24, 3.0, rng)});
  cases.push_back(
      {"random-24-d6", topology::make_random_connected(24, 6.0, rng)});

  consensus::WeightOptimizerConfig cfg;
  cfg.max_iterations = 200;
  for (auto& c : cases) {
    const auto init = consensus::max_degree_weights(c.graph);
    const auto p23 = consensus::minimize_second_eigenvalue(c.graph, cfg);
    const auto p22 = consensus::maximize_smallest_eigenvalue(c.graph, cfg);
    const auto slem = consensus::minimize_slem(c.graph, cfg);
    const auto selection = consensus::select_weight_matrix(c.graph, cfg);
    table.add_row(
        {c.name, std::to_string(iterations_to_optimum(init, c.graph)),
         std::to_string(iterations_to_optimum(p23.w, c.graph)),
         std::to_string(iterations_to_optimum(p22.w, c.graph)),
         std::to_string(iterations_to_optimum(slem.w, c.graph)),
         std::to_string(iterations_to_optimum(selection.w, c.graph))});
  }
  table.print(std::cout);
  std::cout << "(problem (22)'s standalone optimum is ~identity — no "
               "mixing — and (23) alone can go near-periodic; the "
               "selection's convergence score rejects both, which is why "
               "the paper deploys 'the solution that can result in the "
               "larger convergence rate'.)\n";
}

void ape_budget_ablation() {
  experiments::print_banner(
      std::cout,
      "Ablation B — APE initial budget (SVM, 30 servers, degree 3)");
  experiments::Table table({"budget fraction", "iterations", "wire bytes",
                            "vs SNAP-0 bytes", "accuracy"});
  auto cfg = bench::sim_config(30, 3.0);
  cfg.train_samples = bench::scaled(6'000);
  cfg.test_samples = bench::scaled(1'500);
  double snap0_bytes = 0.0;
  for (const double fraction : {0.0, 0.02, 0.05, 0.10, 0.20, 0.50}) {
    cfg.ape.initial_budget_fraction = std::max(fraction, 1e-9);
    const experiments::Scenario scenario(cfg);
    const auto criteria = bench::accuracy_criteria(scenario, 0.02);
    const auto result =
        fraction == 0.0
            ? scenario.run_snap_variant(core::FilterMode::kExactChange,
                                        true, 0.0, criteria)
            : scenario.run_snap_variant(core::FilterMode::kApe, true, 0.0,
                                        criteria);
    if (fraction == 0.0) snap0_bytes = double(result.total_bytes);
    table.add_row(
        {fraction == 0.0 ? "0 (SNAP-0)" : common::format_double(fraction, 2),
         std::to_string(result.converged_after) +
             (result.converged ? "" : "*"),
         common::format_bytes(double(result.total_bytes)),
         common::format_percent(double(result.total_bytes) / snap0_bytes,
                                1),
         common::format_double(result.final_test_accuracy, 4)});
  }
  table.print(std::cout);
  std::cout << "(* = iteration cap; larger budgets withhold more but "
               "park the solution farther from the optimum until the "
               "threshold decays.)\n";
}

void frame_format_ablation() {
  experiments::print_banner(
      std::cout, "Ablation C — frame-format policy (bytes per frame)");
  experiments::Table table({"params", "withheld", "format A", "format B",
                            "adaptive", "adaptive saves vs worst"});
  for (const std::size_t total : {25u, 23'860u}) {
    for (const double withheld_fraction : {0.0, 0.3, 0.49, 0.51, 0.9, 0.99}) {
      const auto withheld = static_cast<std::size_t>(
          std::round(static_cast<double>(total) * withheld_fraction));
      const std::size_t sent = total - withheld;
      const std::size_t a = net::frame_payload_bytes(
          net::FrameFormat::kUnchangedIndex, total, sent);
      const std::size_t b = net::frame_payload_bytes(
          net::FrameFormat::kIndexValue, total, sent);
      const std::size_t adaptive = net::best_frame_payload_bytes(total, sent);
      table.add_row({std::to_string(total),
                     common::format_percent(withheld_fraction, 0),
                     std::to_string(a), std::to_string(b),
                     std::to_string(adaptive),
                     common::format_percent(
                         1.0 - double(adaptive) /
                                   double(std::max(a, b)),
                         1)});
    }
  }
  table.print(std::cout);
  std::cout << "(crossover at N = 2M+1, paper §IV-C: format A wins while "
               "less than half the parameters are withheld, format B "
               "after.)\n";
}

}  // namespace

int main() {
  std::cout << "SNAP design ablations (see DESIGN.md)\n";
  weight_candidate_ablation();
  ape_budget_ablation();
  frame_format_ablation();
  return 0;
}

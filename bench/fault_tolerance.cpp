// Fault-tolerance extension bench — Fig. 9 beyond link loss.
//
// The paper's Fig. 9 sweeps memoryless link failures. This bench
// extends the axis to the fault processes edge deployments actually
// see (FaultInjector): random node churn (crash/restart chains),
// bursty Gilbert–Elliott link outages, and the self-healing weight
// re-projection that keeps EXTRA's recursion anchored to the surviving
// topology. Reported per crash rate: final aggregate loss,
// hop-weighted communication cost, simulated wall-clock, and the
// fault counters the fabrics stamp per round — on both the shared-clock
// and the event-driven fabric, which replay the identical fault
// schedule by construction.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

namespace {

using namespace snap;

experiments::ScenarioConfig churn_config(runtime::FabricKind fabric,
                                         double crash_rate) {
  auto cfg = bench::sim_config(30, 3.0);
  cfg.convergence.max_iterations = 300;
  cfg.fabric = fabric;
  cfg.faults.crash_probability = crash_rate;
  cfg.faults.restart_probability = 0.05;
  cfg.faults.churn_confirm_rounds = 2;
  return cfg;
}

struct FaultTotals {
  std::uint64_t dropped = 0;
  std::uint64_t node_rounds_down = 0;
};

FaultTotals totals_of(const core::TrainResult& result) {
  FaultTotals t;
  for (const auto& it : result.iterations) {
    t.dropped += it.frames_dropped;
    t.node_rounds_down += it.nodes_down;
  }
  return t;
}

void sweep_crash_rate(runtime::FabricKind fabric, const char* title,
                      bench::JsonDoc& json) {
  experiments::print_banner(std::cout, title);
  experiments::Table table({"crash rate", "final loss", "hop cost",
                            "sim seconds", "node-rounds down",
                            "frames dropped"});
  for (const double crash : {0.0, 0.002, 0.005, 0.01}) {
    const experiments::Scenario scenario(churn_config(fabric, crash));
    const auto result = scenario.run(experiments::Scheme::kSnap);
    const FaultTotals t = totals_of(result);
    table.add_row({common::format_percent(crash, 1),
                   common::format_double(result.final_train_loss, 5),
                   common::format_bytes(double(result.total_cost)),
                   common::format_double(result.total_sim_seconds, 3),
                   std::to_string(t.node_rounds_down),
                   std::to_string(t.dropped)});
    json.add_row("crash_sweep",
                 {{"fabric", fabric == runtime::FabricKind::kSync
                                 ? "sync"
                                 : "async"},
                  {"crash_rate", crash},
                  {"final_loss", result.final_train_loss},
                  {"hop_cost", std::uint64_t{result.total_cost}},
                  {"sim_seconds", result.total_sim_seconds},
                  {"node_rounds_down", t.node_rounds_down},
                  {"frames_dropped", t.dropped}});
  }
  table.print(std::cout);
}

void bursty_links(bench::JsonDoc& json) {
  experiments::print_banner(
      std::cout,
      "Bursty link outages — same stationary down-rate, clustered vs "
      "memoryless (enter 0.02; memoryless exit 0.98, bursty exit 0.25)");
  experiments::Table table(
      {"outage model", "final loss", "frames dropped", "sim seconds"});
  for (const bool bursty : {false, true}) {
    auto cfg = bench::sim_config(30, 3.0);
    cfg.convergence.max_iterations = 300;
    cfg.faults.link_enter_burst = 0.02;
    cfg.faults.link_exit_burst = bursty ? 0.25 : 0.98;
    const experiments::Scenario scenario(cfg);
    const auto result = scenario.run(experiments::Scheme::kSnap);
    const FaultTotals t = totals_of(result);
    table.add_row({bursty ? "bursty (GE)" : "memoryless",
                   common::format_double(result.final_train_loss, 5),
                   std::to_string(t.dropped),
                   common::format_double(result.total_sim_seconds, 3)});
    json.add_row("bursty_links",
                 {{"model", bursty ? "bursty" : "memoryless"},
                  {"final_loss", result.final_train_loss},
                  {"frames_dropped", t.dropped},
                  {"sim_seconds", result.total_sim_seconds}});
  }
  table.print(std::cout);
}

// Run under the paper's literal stale-values straggler reading: there a
// dead neighbor's frozen view keeps feeding the recursion with nonzero
// weight, so the healing (which zeroes that weight and restarts) is
// load-bearing. kReweight already folds absent neighbors away per
// round, which masks the contrast.
void reprojection_ablation(bench::JsonDoc& json) {
  experiments::print_banner(
      std::cout,
      "Self-healing ablation — permanent crash of one node at round 30, "
      "with and without weight re-projection on confirmed churn "
      "(stale-values straggler policy)");
  experiments::Table table({"re-projection", "final loss", "converged"});
  for (const bool heal : {true, false}) {
    auto cfg = bench::sim_config(30, 3.0);
    cfg.convergence.max_iterations = 300;
    cfg.faults.scheduled_crashes.push_back({/*node=*/7, /*crash_round=*/30,
                                            /*restart_round=*/0});
    cfg.faults.churn_confirm_rounds = 2;
    cfg.reproject_on_churn = heal;
    const experiments::Scenario scenario(cfg);
    const auto result = scenario.run_snap_variant(
        core::FilterMode::kApe, true, 0.0, cfg.convergence,
        core::StragglerPolicy::kStaleValues);
    table.add_row({heal ? "on (Metropolis)" : "off",
                   common::format_double(result.final_train_loss, 5),
                   result.converged ? "yes" : "no"});
    json.add_row("reprojection_ablation",
                 {{"healing", heal},
                  {"final_loss", result.final_train_loss},
                  {"converged", result.converged}});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace snap;
  const auto cfg = bench::sim_config(30, 3.0);
  bench::print_run_header("fault tolerance (node churn + bursty links)",
                          cfg);
  bench::JsonDoc json;
  json.add_meta("bench", "fault_tolerance");
  json.add_meta("seed", std::uint64_t{cfg.seed});
  json.add_meta("bench_scale", bench::bench_scale());

  sweep_crash_rate(runtime::FabricKind::kSync,
                   "Node churn sweep — shared-clock fabric (crash rate "
                   "per node per round; restart rate 5%)",
                   json);
  sweep_crash_rate(runtime::FabricKind::kAsync,
                   "Node churn sweep — event-driven fabric (identical "
                   "fault schedule, time-based crash confirmation)",
                   json);
  bursty_links(json);
  reprojection_ablation(json);

  std::cout << "\nShape expectations: moderate churn costs accuracy "
               "roughly in proportion to node-rounds lost; bursty "
               "outages hurt more than memoryless ones at the same "
               "stationary rate (consecutive missed rounds compound "
               "through EXTRA's accumulator); and without re-projection "
               "a permanent crash leaves the recursion anchored to a "
               "frozen neighbor, visibly degrading the final loss.\n";
  json.write_file("BENCH_fault_tolerance.json");
  return 0;
}

// Extension experiment (beyond the paper's tables): wall-clock time and
// the incast bottleneck.
//
// The paper's §I motivates SNAP partly with the *incast problem*: a
// parameter server receives every worker's gradient at once, so its
// access link serializes (N−1) dense uploads per round, while SNAP's
// peers each receive only degree-many (filtered) frames. The evaluation
// section never quantifies this; here we do, by replaying the recorded
// per-node byte maxima through a closed-form NIC/compute timing model
// (runtime/timing.hpp; paper-testbed 1 Gbps links).
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "runtime/timing.hpp"

int main() {
  using namespace snap;
  using experiments::Scheme;

  std::cout << "SNAP reproduction bench: Extension — wall-clock time and "
               "incast\nseed=2020 bench_scale=" << bench::bench_scale()
            << "\n";
  runtime::TimingModel timing;  // 1 Gbps NICs, 1 ms RTT, 5 GFLOP/s

  experiments::print_banner(
      std::cout,
      "per-round peak NIC load and wall-clock per fixed 40-round run "
      "(MLP 784-30-10: ~191 KB dense frames)");
  experiments::Table table({"servers", "scheme", "peak NIC in/round",
                            "wall-clock (40 rounds)", "vs SNAP",
                            "final accuracy"});
  for (const std::size_t n : {5u, 10u, 20u}) {
    experiments::ScenarioConfig cfg;
    cfg.workload = experiments::Workload::kMnistMlp;
    cfg.nodes = n;
    cfg.average_degree = 3.0;
    cfg.train_samples = bench::scaled(1'200);
    cfg.test_samples = bench::scaled(600);
    cfg.alpha = 1.0;
    cfg.ape.initial_budget_fraction = 0.3;
    cfg.convergence.loss_tolerance = 0.0;  // fixed 40-round horizon
    cfg.convergence.max_iterations = 40;
    cfg.seed = 2020;
    const experiments::Scenario scenario(cfg);
    const double flops = runtime::gradient_flops(
        scenario.model().param_count(),
        scenario.train_size() / scenario.graph().node_count());

    double snap_time = 0.0;
    for (const Scheme scheme :
         {Scheme::kSnap, Scheme::kSno, Scheme::kPs, Scheme::kTernGrad}) {
      const auto result = scenario.run(scheme);
      std::uint64_t peak_inbound = 0;
      for (const auto& stat : result.iterations) {
        peak_inbound =
            std::max(peak_inbound, stat.max_node_inbound_bytes);
      }
      const double seconds = timing.total_duration(result, flops);
      if (scheme == Scheme::kSnap) snap_time = seconds;
      table.add_row(
          {std::to_string(n), std::string(experiments::scheme_name(scheme)),
           common::format_bytes(double(peak_inbound)),
           common::format_double(seconds, 3) + " s",
           common::format_double(seconds / snap_time, 2) + "x",
           common::format_double(result.final_test_accuracy, 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: the PS node's per-round inbound grows "
               "linearly with N (incast) while SNAP's stays at "
               "degree-many filtered frames, so the wall-clock gap "
               "widens with scale even where iteration counts are "
               "similar.\n";
  return 0;
}

// Reproduces Fig. 6 — convergence rate vs network characteristics.
//
// Paper setup (§V-B): SVM on credit data, random topologies; iterations
// to converge for SNAP, SNAP-0, PS, and TernGrad while sweeping
//   (a) the number of edge servers (degree 3),
//   (b) the average node degree (60 servers).
//
// Paper shape targets: more servers ⇒ more iterations for every scheme;
// SNAP needs only a handful more iterations than SNAP-0; TernGrad is
// dramatically slower and degrades with scale; PS/TernGrad are
// insensitive to node degree while SNAP/SNAP-0 speed up as the degree
// grows.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"

namespace {

using namespace snap;
using experiments::Scheme;

void sweep(const std::string& banner, const std::string& x_label,
           const std::vector<std::pair<std::size_t, double>>& settings) {
  experiments::print_banner(std::cout, banner);
  const std::vector<Scheme> schemes{Scheme::kSnap, Scheme::kSnap0,
                                    Scheme::kPs, Scheme::kTernGrad};
  std::vector<std::string> headers{x_label};
  for (const Scheme s : schemes) {
    headers.emplace_back(experiments::scheme_name(s));
  }
  experiments::Table table(headers);
  for (const auto& [nodes, degree] : settings) {
    const experiments::Scenario scenario(bench::sim_config(nodes, degree));
    const auto criteria = bench::accuracy_criteria(scenario);
    std::vector<std::string> row{x_label == "servers"
                                     ? std::to_string(nodes)
                                     : std::to_string(int(degree))};
    for (const Scheme s : schemes) {
      const auto result = scenario.run(s, criteria);
      row.push_back(std::to_string(result.converged_after) +
                    (result.converged ? "" : "*"));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "(* = hit the iteration cap without converging)\n";
}

}  // namespace

int main() {
  using namespace snap;
  bench::print_run_header("Fig. 6 convergence rate", bench::sim_config(60, 3.0));

  sweep("Fig. 6(a) iterations-to-convergence vs network scale (degree 3)",
        "servers",
        {{20, 3.0}, {40, 3.0}, {60, 3.0}, {80, 3.0}, {100, 3.0}});

  sweep("Fig. 6(b) iterations-to-convergence vs average degree (60 servers)",
        "degree", {{60, 2.0}, {60, 3.0}, {60, 4.0}, {60, 5.0}, {60, 6.0}});

  std::cout << "\nPaper shape targets: iterations grow with N for all "
               "schemes; SNAP within a few iterations of SNAP-0; "
               "TernGrad slowest; degree helps only the peer-to-peer "
               "schemes.\n";
  return 0;
}
